package simnet

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
)

func newNet(t *testing.T, cfg Config) (*des.Sim, *Network) {
	t.Helper()
	sim := des.New(1)
	net, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, net
}

type rcvd struct {
	src ids.ProcID
	at  time.Duration
	b   []byte
}

func collect(t *testing.T, sim *des.Sim, net *Network, p ids.ProcID) *[]rcvd {
	t.Helper()
	out := &[]rcvd{}
	if err := net.Bind(p, func(src ids.ProcID, b []byte) {
		*out = append(*out, rcvd{src, sim.Now(), b})
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0},
		{Nodes: 1, DropProb: 1.0},
		{Nodes: 1, DropProb: -0.1},
		{Nodes: 1, DupProb: 1.0},
		{Nodes: 1, PropDelay: -time.Second},
		{Nodes: 1, BitsPerSecond: -1},
		{Nodes: 1, FrameOverhead: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad config %+v", i, cfg)
		}
	}
	if err := Ethernet10Mbit(10).Validate(); err != nil {
		t.Errorf("Ethernet10Mbit invalid: %v", err)
	}
}

func TestUnicastDeliversWithLatency(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	if err := net.Unicast(0, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	r := (*got)[0]
	if r.src != 0 || string(r.b) != "hi" {
		t.Errorf("got src=%v body=%q", r.src, r.b)
	}
	if r.at != time.Millisecond {
		t.Errorf("arrival at %v, want 1ms", r.at)
	}
}

func TestUnicastRangeChecks(t *testing.T) {
	_, net := newNet(t, Config{Nodes: 2})
	if err := net.Unicast(0, 5, nil); err == nil {
		t.Error("unicast to unknown node succeeded")
	}
	if err := net.Unicast(5, 0, nil); err == nil {
		t.Error("unicast from unknown node succeeded")
	}
	if err := net.Multicast(5, nil); err == nil {
		t.Error("multicast from unknown node succeeded")
	}
	if err := net.Inject(0, 9, nil); err == nil {
		t.Error("inject to unknown node succeeded")
	}
	if err := net.Bind(9, nil); err == nil {
		t.Error("bind to unknown node succeeded")
	}
}

func TestSelfUnicastLoopsBack(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 1, PropDelay: time.Millisecond})
	got := collect(t, sim, net, 0)
	if err := net.Unicast(0, 0, []byte("me")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("self unicast delivered %d, want 1", len(*got))
	}
	if (*got)[0].at != 0 {
		t.Errorf("loopback took %v, want 0 (no wire crossing)", (*got)[0].at)
	}
}

func TestMulticastReachesAllIncludingSender(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 3, PropDelay: time.Millisecond})
	outs := make([]*[]rcvd, 3)
	for i := 0; i < 3; i++ {
		outs[i] = collect(t, sim, net, ids.ProcID(i))
	}
	if err := net.Multicast(1, []byte("all")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if len(*out) != 1 {
			t.Fatalf("node %d received %d packets, want 1", i, len(*out))
		}
	}
	// Sender's loopback is not delayed by propagation.
	if (*outs[1])[0].at >= (*outs[0])[0].at {
		t.Errorf("sender heard its multicast at %v, others at %v — loopback should be earlier",
			(*outs[1])[0].at, (*outs[0])[0].at)
	}
}

func TestTransmissionTimeAndWireSerialization(t *testing.T) {
	// 10 Mbit/s, 1250-byte payload + 0 overhead = 1ms of wire time.
	cfg := Config{Nodes: 3, BitsPerSecond: 10e6}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 2)
	payload := make([]byte, 1250)
	if err := net.Unicast(0, 2, payload); err != nil {
		t.Fatal(err)
	}
	if err := net.Unicast(1, 2, payload); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	if (*got)[0].at != time.Millisecond {
		t.Errorf("first packet at %v, want 1ms", (*got)[0].at)
	}
	// Second transmission had to wait for the shared wire.
	if (*got)[1].at != 2*time.Millisecond {
		t.Errorf("second packet at %v, want 2ms (wire serialization)", (*got)[1].at)
	}
}

// TestRoundRobinFairness pins the medium-arbitration property the
// switching protocol's liveness depends on (see the Network doc
// comment): a node with a huge backlog must not starve other nodes —
// their frames get the wire within about one frame time per contender,
// while the flooder's own queue drains serially.
func TestRoundRobinFairness(t *testing.T) {
	cfg := Config{Nodes: 3, BitsPerSecond: 10e6} // 1250 bytes = 1ms wire time
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 2)
	payload := make([]byte, 1250)
	// Node 0 floods 50 frames; node 1 sends a single frame afterwards.
	for i := 0; i < 50; i++ {
		if err := net.Unicast(0, 2, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Unicast(1, 2, append(payload, 1)); err != nil { // distinguishable length
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 51 {
		t.Fatalf("delivered %d, want 51", len(*got))
	}
	var singleAt time.Duration
	for _, r := range *got {
		if r.src == 1 {
			singleAt = r.at
		}
	}
	// Round-robin: node 1's frame goes second or third, not 51st.
	if singleAt > 3*time.Millisecond {
		t.Errorf("node 1's frame starved until %v behind node 0's backlog", singleAt)
	}
	// The flooder's last frame still pays for its whole queue.
	last := (*got)[len(*got)-1]
	if last.at < 50*time.Millisecond {
		t.Errorf("flooder finished suspiciously early at %v", last.at)
	}
}

func TestReceiveCPUQueues(t *testing.T) {
	cfg := Config{Nodes: 2, RecvCPU: time.Millisecond}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	for i := 0; i < 3; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("delivered %d, want 3", len(*got))
	}
	// Packets all arrive at t=0 but the receiver's CPU serializes them
	// 1ms apart.
	for i, r := range *got {
		want := time.Duration(i+1) * time.Millisecond
		if r.at != want {
			t.Errorf("packet %d processed at %v, want %v", i, r.at, want)
		}
	}
}

func TestSendCPUQueues(t *testing.T) {
	cfg := Config{Nodes: 2, SendCPU: time.Millisecond}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	for i := 0; i < 2; i++ {
		if err := net.Unicast(0, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if (*got)[0].at != time.Millisecond || (*got)[1].at != 2*time.Millisecond {
		t.Errorf("send CPU did not serialize: %v, %v", (*got)[0].at, (*got)[1].at)
	}
}

func TestDropInjection(t *testing.T) {
	cfg := Config{Nodes: 2, DropProb: 0.5}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	const total = 2000
	for i := 0; i < total; i++ {
		if err := net.Unicast(0, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	frac := float64(len(*got)) / total
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("with 50%% drop, delivered fraction = %v", frac)
	}
	st := net.Stats()
	if st.Dropped == 0 || st.Dropped+uint64(len(*got)) != total {
		t.Errorf("stats inconsistent: dropped=%d delivered=%d", st.Dropped, len(*got))
	}
}

func TestDuplicateInjection(t *testing.T) {
	cfg := Config{Nodes: 2, DupProb: 0.5}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	const total = 1000
	for i := 0; i < total; i++ {
		if err := net.Unicast(0, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) <= total {
		t.Errorf("with 50%% dup, delivered %d <= %d", len(*got), total)
	}
	if net.Stats().Duplicated == 0 {
		t.Error("no duplicates recorded in stats")
	}
}

func TestJitterCanReorder(t *testing.T) {
	cfg := Config{Nodes: 2, Jitter: 5 * time.Millisecond}
	sim, net := newNet(t, cfg)
	got := collect(t, sim, net, 1)
	for i := 0; i < 50; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	reordered := false
	for i := 1; i < len(*got); i++ {
		if (*got)[i].b[0] < (*got)[i-1].b[0] {
			reordered = true
		}
	}
	if !reordered {
		t.Error("jitter produced no reordering across 50 packets")
	}
}

func TestBlockUnblock(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2})
	got := collect(t, sim, net, 1)
	net.Block(0, 1)
	if err := net.Unicast(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatal("blocked packet was delivered")
	}
	net.Unblock(0, 1)
	if err := net.Unicast(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatal("unblocked packet was not delivered")
	}
}

func TestInjectBypassesSender(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2, SendCPU: time.Hour})
	got := collect(t, sim, net, 1)
	if err := net.Inject(0, 1, []byte("forged")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || string((*got)[0].b) != "forged" {
		t.Fatal("injected packet not delivered")
	}
	if sim.Now() >= time.Hour {
		t.Error("inject paid sender-side costs")
	}
}

func TestPayloadIsolation(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2})
	var seen []byte
	if err := net.Bind(1, func(_ ids.ProcID, b []byte) { seen = b }); err != nil {
		t.Fatal(err)
	}
	payload := []byte("abc")
	if err := net.Unicast(0, 1, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // sender mutates after send
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if string(seen) != "abc" {
		t.Errorf("receiver saw %q, want \"abc\" (payload must be copied)", seen)
	}
}

func TestUnboundNodeDropsSilently(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 2})
	if err := net.Unicast(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	sim, net := newNet(t, Config{Nodes: 3, BitsPerSecond: 10e6, FrameOverhead: 10})
	for i := 0; i < 3; i++ {
		collect(t, sim, net, ids.ProcID(i))
	}
	if err := net.Unicast(0, 1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := net.Multicast(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Unicasts != 1 || st.Multicasts != 1 {
		t.Errorf("counters: %+v", st)
	}
	if st.Delivered != 4 { // 1 unicast + 3 multicast receivers
		t.Errorf("delivered = %d, want 4", st.Delivered)
	}
	if st.WireBytes != 220 { // two transmissions of 100+10 bytes
		t.Errorf("wire bytes = %d, want 220", st.WireBytes)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	cfg := Config{Nodes: 4, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	logs := make([]*[]rcvd, 4)
	for p := 0; p < 4; p++ {
		logs[p] = collect(t, sim, net, ids.ProcID(p))
	}
	net.Partition([]ids.ProcID{0, 1}, []ids.ProcID{2, 3})
	if !net.Partitioned() {
		t.Fatal("Partitioned() false after Partition")
	}
	if err := net.Multicast(0, []byte("cut")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	// Same side hears it, far side does not.
	if len(*logs[0]) != 1 || len(*logs[1]) != 1 {
		t.Fatalf("same-side deliveries: %d, %d (want 1, 1)", len(*logs[0]), len(*logs[1]))
	}
	if len(*logs[2]) != 0 || len(*logs[3]) != 0 {
		t.Fatalf("cross-cut deliveries: %d, %d (want 0, 0)", len(*logs[2]), len(*logs[3]))
	}
	net.Heal()
	if net.Partitioned() {
		t.Fatal("Partitioned() true after Heal")
	}
	if err := net.Multicast(0, []byte("joined")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		want := 2
		if p >= 2 {
			want = 1
		}
		if len(*logs[p]) != want {
			t.Errorf("node %d delivered %d, want %d", p, len(*logs[p]), want)
		}
	}
}

func TestPartitionLeavesThirdPartyAlone(t *testing.T) {
	cfg := Config{Nodes: 3, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	logs := make([]*[]rcvd, 3)
	for p := 0; p < 3; p++ {
		logs[p] = collect(t, sim, net, ids.ProcID(p))
	}
	net.Partition([]ids.ProcID{0}, []ids.ProcID{1})
	if err := net.Multicast(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := net.Unicast(0, 2, []byte("p2p")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*logs[0]) != 1 || len(*logs[1]) != 1 {
		t.Errorf("outsider multicast blocked: %d, %d", len(*logs[0]), len(*logs[1]))
	}
	if len(*logs[2]) != 2 { // own loopback + p0's unicast
		t.Errorf("node 2 delivered %d, want 2", len(*logs[2]))
	}
}

func TestSetFaults(t *testing.T) {
	cfg := Config{Nodes: 2, PropDelay: time.Millisecond}
	sim, net := newNet(t, cfg)
	log := collect(t, sim, net, 1)
	if err := net.SetFaults(0.5, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	burst := len(*log)
	if burst == 200 || burst == 0 {
		t.Fatalf("drop burst ineffective: %d of 200 delivered", burst)
	}
	// Clearing the faults restores exact delivery.
	if err := net.SetFaults(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := net.Unicast(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(*log)-burst != 50 {
		t.Errorf("after clearing faults %d of 50 delivered", len(*log)-burst)
	}
	if err := net.SetFaults(1.5, 0, 0); err == nil {
		t.Error("SetFaults accepted drop probability 1.5")
	}
	if err := net.SetFaults(0, 0, -time.Second); err == nil {
		t.Error("SetFaults accepted negative jitter")
	}
}

// TestPartitionBlockedSendsConsumeNoRNG pins scheduleDelivery's draw
// ordering contract: the blocked/crashed check precedes every fault
// draw, so traffic into a partition consumes no randomness — the fate
// of every delivery on the healthy links is byte-identical whether or
// not blocked traffic was interleaved with it. (If a blocked delivery
// ever drew from the RNG, the two runs below would diverge.)
func TestPartitionBlockedSendsConsumeNoRNG(t *testing.T) {
	run := func(withBlocked bool) ([]rcvd, int64) {
		cfg := Config{Nodes: 3, PropDelay: time.Millisecond}
		sim, net := newNet(t, cfg)
		log := collect(t, sim, net, 2)
		_ = collect(t, sim, net, 1)
		net.Partition([]ids.ProcID{1}, []ids.ProcID{0, 2})
		if err := net.SetFaults(0.4, 0.2, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			if withBlocked {
				if err := net.Unicast(0, 1, []byte{0xbb, byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := net.Unicast(0, 2, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		// The next draw's value pins the RNG stream position exactly.
		return *log, sim.Rand().Int63()
	}
	with, rngWith := run(true)
	without, rngWithout := run(false)
	if len(with) == 0 || len(with) == 80 {
		t.Fatalf("fault draws ineffective: %d of 80 delivered", len(with))
	}
	if !reflect.DeepEqual(with, without) {
		t.Errorf("blocked traffic perturbed the healthy link: %d vs %d deliveries", len(with), len(without))
	}
	if rngWith != rngWithout {
		t.Errorf("blocked traffic consumed RNG: stream positions diverge (%d vs %d)", rngWith, rngWithout)
	}
}
