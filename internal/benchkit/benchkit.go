// Package benchkit is the shared toolbox of the BENCH_*.json consumers
// (cmd/benchdiff, cmd/sptrend): loading artifacts, flattening nested
// JSON into dotted leaf keys, and the small numeric helpers the tools
// agree on. Keeping the flattening in one place guarantees the two
// tools see the same key space — a gate configured in benchdiff names
// the same leaves a trend table prints.
package benchkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// Load reads and decodes one artifact.
func Load(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// Flatten turns nested JSON into "a.b[2].c" -> scalar. With dropTiming,
// every "timing" object — the only non-deterministic section of an
// artifact — is skipped, which is what artifact comparison wants; trend
// analysis keeps it, since wall-clock drift across runs is a trend too.
func Flatten(prefix string, v any, dropTiming bool) map[string]any {
	out := map[string]any{}
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			if dropTiming && k == "timing" {
				continue
			}
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			for fk, fv := range Flatten(p, child, dropTiming) {
				out[fk] = fv
			}
		}
	case []any:
		for i, child := range t {
			for fk, fv := range Flatten(fmt.Sprintf("%s[%d]", prefix, i), child, dropTiming) {
				out[fk] = fv
			}
		}
	default:
		out[prefix] = v
	}
	return out
}

// Leaf returns the last dotted component of a flattened key (with any
// "[i]" index suffix intact): the name gates and filters match on.
func Leaf(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}

// Stats is the per-key summary of one value series across runs.
type Stats struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes mean/std/min/max of a series (population standard
// deviation — the runs are the whole population being described, not a
// sample from a larger one).
func Summarize(vals []float64) Stats {
	s := Stats{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vals[0], vals[0]
	var sum float64
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, v := range vals {
		d := v - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(s.N))
	return s
}
