package benchkit

import (
	"math"
	"testing"
)

func TestFlattenDropsTimingOnlyWhenAsked(t *testing.T) {
	doc := map[string]any{
		"schema": "switchbench/x",
		"timing": map[string]any{"wall_ms": 12.5},
		"rows": []any{
			map[string]any{"a": 1.0},
			map[string]any{"a": 2.0, "timing": map[string]any{"wall_ms": 3.0}},
		},
	}
	flat := Flatten("", doc, true)
	if _, ok := flat["timing.wall_ms"]; ok {
		t.Error("dropTiming kept the top-level timing section")
	}
	if _, ok := flat["rows[1].timing.wall_ms"]; ok {
		t.Error("dropTiming kept a nested timing section")
	}
	if flat["rows[0].a"] != 1.0 || flat["rows[1].a"] != 2.0 || flat["schema"] != "switchbench/x" {
		t.Errorf("flatten lost leaves: %v", flat)
	}
	kept := Flatten("", doc, false)
	if kept["timing.wall_ms"] != 12.5 || kept["rows[1].timing.wall_ms"] != 3.0 {
		t.Errorf("non-dropping flatten lost timing leaves: %v", kept)
	}
}

func TestLeaf(t *testing.T) {
	for in, want := range map[string]string{
		"failed":                 "failed",
		"rows[2].msgs_per_sec":   "msgs_per_sec",
		"series[0].members[1].p99_us": "p99_us",
	} {
		if got := Leaf(in); got != want {
			t.Errorf("Leaf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty series: %+v", s)
	}
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("population std = %v, want 2", s.Std)
	}
}
