// Package conf implements the Confidentiality property of Table 1 of the
// paper — "non-trusted processes cannot see messages from trusted
// processes" — as an AES-CTR encryption layer keyed with a group key.
// A process without the key sees only ciphertext; decryption with a
// wrong key yields bytes that fail to parse in the layers above.
//
// Confidentiality satisfies all six meta-properties (§5–6) and is
// therefore preserved by the switching protocol. Combine with the
// integrity layer for authenticated encryption (see examples/security).
package conf

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Layer encrypts every payload through it.
type Layer struct {
	block cipher.Block
	env   proto.Env
	down  proto.Down
	up    proto.Up
	// rejected counts payloads too short to carry a nonce.
	rejected uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates a confidentiality layer. The key must be a valid AES key
// length (16, 24 or 32 bytes); the error mirrors crypto/aes.
func New(key []byte) (*Layer, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("conf: %w", err)
	}
	return &Layer{block: block}, nil
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("conf: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Rejected returns the number of malformed payloads dropped.
func (l *Layer) Rejected() uint64 { return l.rejected }

// seal encrypts payload under a fresh random nonce (drawn from the
// runtime's stream — deterministic under simulation).
func (l *Layer) seal(payload []byte) []byte {
	nonce := make([]byte, aes.BlockSize)
	l.env.Rand().Read(nonce)
	ct := make([]byte, len(payload))
	cipher.NewCTR(l.block, nonce).XORKeyStream(ct, payload)
	e := wire.NewEncoder(aes.BlockSize + 2)
	e.BytesField(nonce)
	return e.Prepend(ct)
}

// Cast implements proto.Layer.
func (l *Layer) Cast(payload []byte) error {
	return l.down.Cast(l.seal(payload))
}

// Send implements proto.Layer.
func (l *Layer) Send(dst ids.ProcID, payload []byte) error {
	return l.down.Send(dst, l.seal(payload))
}

// Recv implements proto.Layer: strip the nonce and decrypt.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	nonce := d.BytesField()
	if d.Err() != nil || len(nonce) != aes.BlockSize {
		l.rejected++
		return
	}
	ct := d.Remaining()
	pt := make([]byte, len(ct))
	cipher.NewCTR(l.block, nonce).XORKeyStream(pt, ct)
	l.up.Deliver(src, pt)
}
