package conf

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

var groupKey = []byte("0123456789abcdef") // AES-128

func mustNew(t *testing.T, key []byte) *Layer {
	t.Helper()
	l, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestKeyValidation(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Error("New accepted an invalid AES key length")
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("New rejected %d-byte key: %v", n, err)
		}
	}
}

func TestEncryptedCastDelivers(t *testing.T) {
	c, err := ptest.New(1, simnet.Config{Nodes: 3, PropDelay: time.Millisecond}, 3,
		func(proto.Env) []proto.Layer {
			l, err := New(groupKey)
			if err != nil {
				panic(err)
			}
			return []proto.Layer{l}
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cast(0, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	for p := 0; p < 3; p++ {
		if got := c.Bodies(ids.ProcID(p)); len(got) != 1 || got[0] != "secret" {
			t.Fatalf("member %d got %v", p, got)
		}
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	l := mustNew(t, groupKey)
	down := &ptest.RecordDown{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	secret := []byte("attack at dawn")
	if err := l.Cast(secret); err != nil {
		t.Fatal(err)
	}
	if len(down.Casts) != 1 {
		t.Fatal("no cast recorded")
	}
	if bytes.Contains(down.Casts[0], secret) {
		t.Error("ciphertext contains the plaintext — confidentiality broken")
	}
}

func TestWrongKeyYieldsGarbage(t *testing.T) {
	// "Non-trusted processes cannot see messages from trusted
	// processes": a receiver with the wrong key gets bytes that do not
	// match the plaintext.
	sender := mustNew(t, groupKey)
	down := &ptest.RecordDown{}
	if err := sender.Init(ptest.NewFakeEnv(0, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Cast([]byte("attack at dawn")); err != nil {
		t.Fatal(err)
	}
	eavesdropper := mustNew(t, []byte("ffffffffffffffff"))
	up := &ptest.RecordUp{}
	if err := eavesdropper.Init(ptest.NewFakeEnv(1, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	eavesdropper.Recv(0, down.Casts[0])
	if len(up.Deliveries) != 1 {
		t.Fatal("CTR decryption always produces bytes; expected a delivery")
	}
	if string(up.Deliveries[0].Payload) == "attack at dawn" {
		t.Error("eavesdropper recovered the plaintext")
	}
}

func TestSendPathEncrypts(t *testing.T) {
	l := mustNew(t, groupKey)
	down := &ptest.RecordDown{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(1, []byte("p2p-secret")); err != nil {
		t.Fatal(err)
	}
	if len(down.Sends) != 1 || down.Sends[0].Dst != 1 {
		t.Fatal("send not forwarded")
	}
	if bytes.Contains(down.Sends[0].Payload, []byte("p2p-secret")) {
		t.Error("send path leaked plaintext")
	}
}

func TestNoncesAreFresh(t *testing.T) {
	l := mustNew(t, groupKey)
	down := &ptest.RecordDown{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Cast([]byte("same")); err != nil {
		t.Fatal(err)
	}
	if err := l.Cast([]byte("same")); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(down.Casts[0], down.Casts[1]) {
		t.Error("identical plaintexts produced identical ciphertexts (nonce reuse)")
	}
}

func TestGarbageRejected(t *testing.T) {
	l := mustNew(t, groupKey)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	l.Recv(0, nil)
	l.Recv(0, []byte{3, 1, 2, 3}) // nonce length 3: invalid
	if len(up.Deliveries) != 0 {
		t.Error("garbage delivered")
	}
	if l.Rejected() != 2 {
		t.Errorf("Rejected = %d, want 2", l.Rejected())
	}
}

func TestInitValidation(t *testing.T) {
	l := mustNew(t, groupKey)
	if err := l.Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}
