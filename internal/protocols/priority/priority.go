// Package priority implements the Prioritized Delivery property of
// Table 1 of the paper — "the master process always delivers a message
// before any one else". Non-master receivers hold each message until the
// master announces it has delivered it.
//
// Prioritized Delivery is the paper's example of a property that is
// *not asynchronous* (§5.2): it constrains the relative order of events
// at different processes, an order that layering delays — and the
// switching protocol — cannot preserve. The switching package's tests
// demonstrate the violation.
package priority

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

const (
	// kindData carries an application payload.
	kindData uint8 = iota + 1
	// kindRelease announces that the master delivered a payload digest.
	kindRelease
)

type digest = [sha256.Size]byte

// Layer enforces master-first delivery.
type Layer struct {
	master ids.ProcID
	env    proto.Env
	down   proto.Down
	up     proto.Up

	// Non-master state: payloads waiting for the master's release, in
	// arrival order, and the set of already-released digests.
	waiting  []held
	released map[digest]bool
}

type held struct {
	src     ids.ProcID
	key     digest
	payload []byte
}

var _ proto.Layer = (*Layer)(nil)

// New creates a prioritized-delivery layer with the given master.
func New(master ids.ProcID) *Layer {
	return &Layer{master: master, released: make(map[digest]bool)}
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("priority: nil wiring")
	}
	if !env.Ring().Contains(l.master) {
		return fmt.Errorf("priority: master %v is not a group member", l.master)
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Waiting returns the number of messages held for master release.
func (l *Layer) Waiting() int { return len(l.waiting) }

// Cast implements proto.Layer.
func (l *Layer) Cast(payload []byte) error {
	e := wire.NewEncoder(2)
	e.U8(kindData)
	return l.down.Cast(e.Prepend(payload))
}

// Send implements proto.Layer: not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindData:
		if d.Err() != nil {
			return
		}
		payload := d.Remaining()
		key := sha256.Sum256(payload)
		if l.env.Self() == l.master {
			// The master delivers immediately and releases the others.
			l.up.Deliver(src, payload)
			e := wire.NewEncoder(sha256.Size + 4)
			e.U8(kindRelease).BytesField(key[:])
			_ = l.down.Cast(e.Bytes())
			return
		}
		if l.released[key] {
			delete(l.released, key)
			l.up.Deliver(src, payload)
			return
		}
		l.waiting = append(l.waiting, held{src: src, key: key, payload: payload})
	case kindRelease:
		sum := d.BytesField()
		if d.Err() != nil || len(sum) != sha256.Size || src != l.master {
			return
		}
		var key digest
		copy(key[:], sum)
		if l.env.Self() == l.master {
			return // the master's own release loops back; ignore
		}
		for i, h := range l.waiting {
			if h.key == key {
				l.waiting = append(l.waiting[:i], l.waiting[i+1:]...)
				l.up.Deliver(h.src, h.payload)
				return
			}
		}
		// Release raced ahead of the data; remember it.
		l.released[key] = true
	}
}
