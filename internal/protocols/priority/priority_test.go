package priority

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func cluster(t *testing.T, seed int64, cfg simnet.Config, n int) *ptest.Cluster {
	t.Helper()
	c, err := ptest.New(seed, cfg, n, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(0), fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMasterDeliversFirst(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond, Jitter: 3 * time.Millisecond}
	c := cluster(t, 3, cfg, 4)
	for i := 0; i < 10; i++ {
		if err := c.Cast(2, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(5 * time.Second)
	// Every message must be delivered by the master strictly before any
	// non-master delivery of the same message.
	masterAt := map[string]time.Duration{}
	for _, d := range c.Members[0].Delivered {
		masterAt[string(d.Payload)] = d.At
	}
	for p := 1; p < 4; p++ {
		for _, d := range c.Members[p].Delivered {
			m, ok := masterAt[string(d.Payload)]
			if !ok {
				t.Fatalf("member %d delivered %q the master never delivered", p, d.Payload)
			}
			if d.At < m {
				t.Fatalf("member %d delivered %q at %v before master's %v", p, d.Payload, d.At, m)
			}
		}
	}
	for p := 0; p < 4; p++ {
		if got := len(c.Members[p].Delivered); got != 10 {
			t.Fatalf("member %d delivered %d, want 10", p, got)
		}
	}
}

func TestMasterAsSender(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 3)
	if err := c.Cast(0, []byte("from-master")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	for p := 0; p < 3; p++ {
		if got := c.Bodies(ids.ProcID(p)); len(got) != 1 {
			t.Fatalf("member %d got %v", p, got)
		}
	}
}

func TestReleaseBeforeDataRace(t *testing.T) {
	// Drive the layer directly: release arrives before the data.
	l := New(0)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(1, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	// Build the release packet the master would send for "x".
	master := New(0)
	masterDown := &ptest.RecordDown{}
	if err := master.Init(ptest.NewFakeEnv(0, 2), masterDown, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	var dataPkt []byte
	{
		d := &ptest.RecordDown{}
		sender := New(0)
		if err := sender.Init(ptest.NewFakeEnv(1, 2), d, &ptest.RecordUp{}); err != nil {
			t.Fatal(err)
		}
		if err := sender.Cast([]byte("x")); err != nil {
			t.Fatal(err)
		}
		dataPkt = d.Casts[0]
	}
	master.Recv(1, dataPkt) // master delivers, emits release
	release := masterDown.Casts[0]
	l.Recv(0, release) // release first
	if len(up.Deliveries) != 0 {
		t.Fatal("delivered before data arrived")
	}
	l.Recv(1, dataPkt) // then data
	if len(up.Deliveries) != 1 || string(up.Deliveries[0].Payload) != "x" {
		t.Fatalf("deliveries = %v", up.Bodies())
	}
}

func TestNonMasterReleaseIgnored(t *testing.T) {
	l := New(0)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(1, 3), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	// Data from p2 held for release.
	sender := New(0)
	d := &ptest.RecordDown{}
	if err := sender.Init(ptest.NewFakeEnv(2, 3), d, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Recv(2, d.Casts[0])
	if l.Waiting() != 1 {
		t.Fatal("data not held")
	}
	// A forged release from a non-master (p2) must be ignored.
	master := New(0)
	md := &ptest.RecordDown{}
	if err := master.Init(ptest.NewFakeEnv(0, 3), md, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	master.Recv(2, d.Casts[0])
	forged := md.Casts[0]
	l.Recv(2, forged) // src is 2, not the master
	if len(up.Deliveries) != 0 {
		t.Error("forged release accepted")
	}
	l.Recv(0, forged) // genuine master release
	if len(up.Deliveries) != 1 {
		t.Error("genuine release rejected")
	}
}

func TestInitValidation(t *testing.T) {
	if err := New(0).Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
	if err := New(9).Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, &ptest.RecordUp{}); err == nil {
		t.Error("Init accepted master outside the group")
	}
}

func TestSendUnsupported(t *testing.T) {
	if err := New(0).Send(1, nil); err != proto.ErrUnsupported {
		t.Error("Send should be unsupported")
	}
}

func TestGarbageIgnored(t *testing.T) {
	l := New(0)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(1, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	l.Recv(0, nil)
	l.Recv(0, []byte{kindRelease, 3, 1, 2, 3}) // bad digest length
	l.Recv(0, []byte{99})
	if len(up.Deliveries) != 0 || l.Waiting() != 0 {
		t.Error("garbage affected state")
	}
}
