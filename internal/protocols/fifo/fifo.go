// Package fifo implements reliable FIFO multicast and unicast — the
// substrate both total-order protocols of the paper sit on. It provides
// exactly the guarantees the switching protocol assumes of its underlying
// protocols (§2): no spurious deliveries, at-most-once delivery, and —
// for liveness — exactly-once delivery even across message loss.
//
// Mechanism: per-stream sequence numbers with receiver-side reordering,
// NACK-based retransmission for gap repair, sender heartbeats for
// tail-loss detection, and cumulative acknowledgements for send-buffer
// garbage collection.
package fifo

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Packet kinds on the wire.
const (
	kindCast      uint8 = iota + 1 // multicast data: seq, payload
	kindSend                       // unicast data: seq, payload
	kindNack                       // repair request: stream kind, seq
	kindAck                        // cumulative acks: castNext, sendNext
	kindHeartbeat                  // sender's next cast seq (tail-loss probe)
)

// Config tunes the reliability machinery. The zero value is completed by
// DefaultConfig.
type Config struct {
	// ResendInterval is how often a receiver re-requests missing
	// packets while it has gaps.
	ResendInterval time.Duration
	// AckInterval is how often a receiver sends cumulative acks (which
	// garbage-collect the sender's retransmission buffers).
	AckInterval time.Duration
	// HeartbeatInterval is how often a sender with unacknowledged data
	// announces its stream position so receivers can detect tail loss.
	HeartbeatInterval time.Duration
	// CastWindow bounds the number of unacknowledged outgoing casts
	// (flow control): further casts queue locally until acks free
	// window space. Zero means unlimited.
	CastWindow int
}

// DefaultConfig returns production-ish defaults for the simulated
// environment.
func DefaultConfig() Config {
	return Config{
		ResendInterval:    20 * time.Millisecond,
		AckInterval:       50 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ResendInterval <= 0 {
		c.ResendInterval = d.ResendInterval
	}
	if c.AckInterval <= 0 {
		c.AckInterval = d.AckInterval
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	return c
}

// Stats counts protocol activity, exported for tests and benchmarks.
type Stats struct {
	CastsSent      uint64
	SendsSent      uint64
	Retransmits    uint64
	NacksSent      uint64
	DupsSuppressed uint64
	// CastsQueued counts casts delayed by the flow-control window.
	CastsQueued uint64
}

// Layer is one process's instance of the protocol.
type Layer struct {
	cfg  Config
	env  proto.Env
	down proto.Down
	up   proto.Up
	// members caches the ring order at Init (Env.Members copies on
	// every call — too hot for the periodic ticks).
	members []ids.ProcID

	// Outgoing multicast stream.
	castSeq uint64            // next seq to assign
	castOut map[uint64][]byte // unacked sent casts, for repair
	// Outgoing unicast streams, per destination.
	sendSeq map[ids.ProcID]uint64
	sendOut map[ids.ProcID]map[uint64][]byte

	// Incoming streams, per peer.
	castIn map[ids.ProcID]*reorderBuf
	sendIn map[ids.ProcID]*reorderBuf

	// Cumulative acks received, per peer, for GC of castOut.
	castAcked map[ids.ProcID]uint64

	// castQueue holds casts awaiting flow-control window space.
	castQueue [][]byte

	timers  []proto.Timer
	stopped bool
	stats   Stats
	// malformed counts packets dropped by the defensive ingress
	// (decode failure or unknown kind) before any state mutation.
	malformed uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates a fifo layer.
func New(cfg Config) *Layer {
	return &Layer{
		cfg:       cfg.withDefaults(),
		castOut:   make(map[uint64][]byte),
		sendSeq:   make(map[ids.ProcID]uint64),
		sendOut:   make(map[ids.ProcID]map[uint64][]byte),
		castIn:    make(map[ids.ProcID]*reorderBuf),
		sendIn:    make(map[ids.ProcID]*reorderBuf),
		castAcked: make(map[ids.ProcID]uint64),
	}
}

// maxSeqAhead bounds how far beyond the in-order horizon an arriving
// seq (data or heartbeat) may claim to be. A legitimate stream only
// runs ahead by the messages actually in flight; a corrupted or forged
// seq far beyond that would poison the reorder buffer's horizon and
// make gap repair enumerate the whole range. Anything further ahead is
// dropped as malformed, before any state mutation.
const maxSeqAhead = 1 << 20

// reorderBuf reassembles one FIFO stream.
type reorderBuf struct {
	next    uint64            // next seq to deliver
	pending map[uint64][]byte // out-of-order arrivals
	// highest is the largest seq we know exists (from data or
	// heartbeats); used to detect tail gaps.
	highest uint64
	hasHigh bool
}

func newReorderBuf() *reorderBuf {
	return &reorderBuf{pending: make(map[uint64][]byte)}
}

// gaps returns the missing sequence numbers below the known horizon.
func (r *reorderBuf) gaps() []uint64 {
	if !r.hasHigh {
		return nil
	}
	var out []uint64
	for s := r.next; s <= r.highest; s++ {
		if _, ok := r.pending[s]; !ok {
			out = append(out, s)
		}
	}
	return out
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("fifo: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	l.members = env.Members()
	l.scheduleTick(l.cfg.ResendInterval, l.resendTick)
	l.scheduleTick(l.cfg.AckInterval, l.ackTick)
	l.scheduleTick(l.cfg.HeartbeatInterval, l.heartbeatTick)
	return nil
}

// scheduleTick arms a self-rearming timer. The callback is built once
// and the timer keeps one fixed slot in l.timers, so steady-state
// re-arming allocates neither a closure nor a slice slot per tick.
func (l *Layer) scheduleTick(d time.Duration, fn func()) {
	idx := len(l.timers)
	l.timers = append(l.timers, nil)
	var cb func()
	cb = func() {
		if l.stopped {
			return
		}
		fn()
		if l.stopped {
			return
		}
		l.timers[idx] = l.env.After(d, cb)
	}
	l.timers[idx] = l.env.After(d, cb)
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {
	l.stopped = true
	for _, t := range l.timers {
		t.Stop()
	}
	l.timers = nil
}

// Stats returns a copy of the counters.
func (l *Layer) Stats() Stats { return l.stats }

// Cast implements proto.Layer: reliable FIFO multicast, subject to the
// flow-control window.
func (l *Layer) Cast(payload []byte) error {
	if l.cfg.CastWindow > 0 && len(l.castOut) >= l.cfg.CastWindow {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		l.castQueue = append(l.castQueue, buf)
		l.stats.CastsQueued++
		return nil
	}
	return l.castNow(payload)
}

func (l *Layer) castNow(payload []byte) error {
	seq := l.castSeq
	l.castSeq++
	pkt := encodeData(kindCast, seq, payload)
	l.castOut[seq] = pkt
	l.stats.CastsSent++
	return l.down.Cast(pkt)
}

// drainCastQueue sends queued casts as window space frees up.
func (l *Layer) drainCastQueue() {
	for len(l.castQueue) > 0 {
		if l.cfg.CastWindow > 0 && len(l.castOut) >= l.cfg.CastWindow {
			return
		}
		payload := l.castQueue[0]
		l.castQueue = l.castQueue[1:]
		_ = l.castNow(payload)
	}
}

// QueuedCasts returns the number of casts waiting for window space.
func (l *Layer) QueuedCasts() int { return len(l.castQueue) }

// Send implements proto.Layer: reliable FIFO unicast.
func (l *Layer) Send(dst ids.ProcID, payload []byte) error {
	seq := l.sendSeq[dst]
	l.sendSeq[dst] = seq + 1
	pkt := encodeData(kindSend, seq, payload)
	out := l.sendOut[dst]
	if out == nil {
		out = make(map[uint64][]byte)
		l.sendOut[dst] = out
	}
	out[seq] = pkt
	l.stats.SendsSent++
	return l.down.Send(dst, pkt)
}

// encodeData builds an independently owned data frame (it is retained
// in the retransmission buffers): one right-sized allocation, appended
// directly — an encoder would cost a second.
func encodeData(kind uint8, seq uint64, payload []byte) []byte {
	out := make([]byte, 0, 12+len(payload))
	out = append(out, kind)
	out = binary.AppendUvarint(out, seq)
	return append(out, payload...)
}

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	kind := d.U8()
	switch kind {
	case kindCast:
		seq := d.Uvarint()
		if d.Err() != nil {
			l.malformed++
			return
		}
		l.onData(l.streamIn(l.castIn, src), src, seq, d.Remaining())
	case kindSend:
		seq := d.Uvarint()
		if d.Err() != nil {
			l.malformed++
			return
		}
		l.onData(l.streamIn(l.sendIn, src), src, seq, d.Remaining())
	case kindNack:
		stream := d.U8()
		seq := d.Uvarint()
		if d.Err() != nil || (stream != kindCast && stream != kindSend) {
			l.malformed++
			return
		}
		l.onNack(src, stream, seq)
	case kindAck:
		castNext := d.Uvarint()
		sendNext := d.Uvarint()
		if d.Err() != nil {
			l.malformed++
			return
		}
		l.onAck(src, castNext, sendNext)
	case kindHeartbeat:
		stream := d.U8()
		next := d.Uvarint()
		if d.Err() != nil || (stream != kindCast && stream != kindSend) {
			l.malformed++
			return
		}
		l.onHeartbeat(src, stream, next)
	default:
		l.malformed++
	}
}

// MalformedDropped returns how many packets the defensive ingress
// rejected (decode failure or unknown kind).
func (l *Layer) MalformedDropped() uint64 { return l.malformed }

func (l *Layer) streamIn(m map[ids.ProcID]*reorderBuf, src ids.ProcID) *reorderBuf {
	r := m[src]
	if r == nil {
		r = newReorderBuf()
		m[src] = r
	}
	return r
}

// onData stores an arrival and delivers any in-order run.
func (l *Layer) onData(r *reorderBuf, src ids.ProcID, seq uint64, payload []byte) {
	if seq < r.next {
		l.stats.DupsSuppressed++
		return // already delivered
	}
	if seq > r.next+maxSeqAhead {
		l.malformed++
		return // absurd horizon jump: adversarial or corrupted seq
	}
	if _, dup := r.pending[seq]; dup {
		l.stats.DupsSuppressed++
		return
	}
	r.pending[seq] = payload
	if !r.hasHigh || seq > r.highest {
		r.highest, r.hasHigh = seq, true
	}
	for {
		p, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		r.next++
		l.up.Deliver(src, p)
	}
	// Immediate gap repair: if this arrival exposed a hole, ask now
	// rather than waiting for the resend tick.
	if len(r.pending) > 0 {
		l.requestRepairs(src, r)
	}
}

// requestRepairs NACKs every missing seq of one peer's streams.
func (l *Layer) requestRepairs(src ids.ProcID, r *reorderBuf) {
	stream := kindCast
	if r == l.sendIn[src] {
		stream = kindSend
	}
	for _, seq := range r.gaps() {
		e := wire.GetEncoder()
		e.U8(kindNack).U8(stream).Uvarint(seq)
		l.stats.NacksSent++
		// Best effort: the resend tick retries if this NACK is lost.
		_ = l.down.Send(src, e.Bytes())
		wire.PutEncoder(e)
	}
}

// onNack retransmits the requested packet to the requester.
func (l *Layer) onNack(src ids.ProcID, stream uint8, seq uint64) {
	var pkt []byte
	switch stream {
	case kindCast:
		pkt = l.castOut[seq]
	case kindSend:
		pkt = l.sendOut[src][seq]
	}
	if pkt == nil {
		return // GCed or never existed
	}
	l.stats.Retransmits++
	_ = l.down.Send(src, pkt)
}

// onAck garbage-collects acknowledged packets.
func (l *Layer) onAck(src ids.ProcID, castNext, sendNext uint64) {
	if castNext > l.castAcked[src] {
		l.castAcked[src] = castNext
	}
	// A cast packet is reclaimable once every member — including this
	// process's own loopback stream, whose delivery can also be lost —
	// has progressed past it.
	min := l.castSeq
	if r := l.castIn[l.env.Self()]; r != nil {
		if r.next < min {
			min = r.next
		}
	} else if min > 0 {
		min = 0
	}
	for _, m := range l.members {
		if m == l.env.Self() {
			continue
		}
		if l.castAcked[m] < min {
			min = l.castAcked[m]
		}
	}
	for seq := range l.castOut {
		if seq < min {
			delete(l.castOut, seq)
		}
	}
	for seq := range l.sendOut[src] {
		if seq < sendNext {
			delete(l.sendOut[src], seq)
		}
	}
	l.drainCastQueue()
}

// onHeartbeat learns the sender's stream horizon and repairs tail loss.
// stream says which of the peer's streams the horizon describes.
func (l *Layer) onHeartbeat(src ids.ProcID, stream uint8, next uint64) {
	if next == 0 {
		return
	}
	var r *reorderBuf
	switch stream {
	case kindCast:
		r = l.streamIn(l.castIn, src)
	case kindSend:
		r = l.streamIn(l.sendIn, src)
	default:
		return
	}
	top := next - 1
	if top > r.next+maxSeqAhead {
		l.malformed++
		return // absurd horizon jump: adversarial or corrupted seq
	}
	if !r.hasHigh || top > r.highest {
		r.highest, r.hasHigh = top, true
	}
	if len(r.gaps()) > 0 {
		l.requestRepairs(src, r)
	}
}

// resendTick re-requests all outstanding gaps (NACKs may be lost too).
// Peers are visited in ring order: map iteration order would vary run to
// run, desynchronizing the network's seeded fault stream.
func (l *Layer) resendTick() {
	for _, src := range l.members {
		if r := l.castIn[src]; r != nil && len(r.gaps()) > 0 {
			l.requestRepairs(src, r)
		}
		if r := l.sendIn[src]; r != nil && len(r.gaps()) > 0 {
			l.requestRepairs(src, r)
		}
	}
}

// ackTick sends cumulative acks to every peer we have streams from, in
// ring order (determinism, as in resendTick).
func (l *Layer) ackTick() {
	for _, p := range l.members {
		if p == l.env.Self() {
			continue
		}
		if l.castIn[p] == nil && l.sendIn[p] == nil {
			continue
		}
		var castNext, sendNext uint64
		if r := l.castIn[p]; r != nil {
			castNext = r.next
		}
		if r := l.sendIn[p]; r != nil {
			sendNext = r.next
		}
		e := wire.GetEncoder()
		e.U8(kindAck).Uvarint(castNext).Uvarint(sendNext)
		_ = l.down.Send(p, e.Bytes())
		wire.PutEncoder(e)
	}
}

// heartbeatTick announces stream horizons while data is unacked, so
// receivers can detect tail loss on both multicast and unicast streams.
func (l *Layer) heartbeatTick() {
	if len(l.castOut) > 0 {
		e := wire.GetEncoder()
		e.U8(kindHeartbeat).U8(kindCast).Uvarint(l.castSeq)
		_ = l.down.Cast(e.Bytes())
		wire.PutEncoder(e)
	}
	for _, dst := range l.members {
		if len(l.sendOut[dst]) == 0 {
			continue
		}
		e := wire.GetEncoder()
		e.U8(kindHeartbeat).U8(kindSend).Uvarint(l.sendSeq[dst])
		_ = l.down.Send(dst, e.Bytes())
		wire.PutEncoder(e)
	}
}
