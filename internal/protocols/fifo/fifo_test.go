package fifo

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func cluster(t *testing.T, seed int64, cfg simnet.Config, n int) *ptest.Cluster {
	t.Helper()
	c, err := ptest.New(seed, cfg, n, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCastDeliversToAllInOrder(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 4)
	for i := 0; i < 5; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	for p := 0; p < 4; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != 5 {
			t.Fatalf("member %d delivered %d, want 5: %v", p, len(got), got)
		}
		for i, b := range got {
			if b != fmt.Sprintf("m%d", i) {
				t.Fatalf("member %d out of FIFO order: %v", p, got)
			}
		}
	}
}

func TestSenderHearsOwnCast(t *testing.T) {
	cfg := simnet.Config{Nodes: 2}
	c := cluster(t, 1, cfg, 2)
	if err := c.Cast(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if got := c.Bodies(1); len(got) != 1 || got[0] != "self" {
		t.Fatalf("sender's own delivery = %v", got)
	}
}

func TestUnicastSend(t *testing.T) {
	cfg := simnet.Config{Nodes: 3}
	c := cluster(t, 1, cfg, 3)
	for i := 0; i < 3; i++ {
		if err := c.Members[0].Stack.Send(2, []byte(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	if got := c.Bodies(2); len(got) != 3 || got[0] != "u0" || got[2] != "u2" {
		t.Fatalf("unicast stream at p2 = %v", got)
	}
	if got := c.Bodies(1); len(got) != 0 {
		t.Fatalf("bystander received unicast: %v", got)
	}
}

func TestRecoveryFromLoss(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond, DropProb: 0.3}
	c := cluster(t, 7, cfg, 3)
	const n = 40
	for i := 0; i < n; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(20 * time.Second)
	for p := 0; p < 3; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != n {
			t.Fatalf("member %d delivered %d/%d under loss", p, len(got), n)
		}
		for i, b := range got {
			if b != fmt.Sprintf("m%03d", i) {
				t.Fatalf("member %d order violated at %d: %v", p, i, got[:i+1])
			}
		}
	}
	// Loss recovery must have actually exercised retransmission.
	var retx uint64
	for range c.Members {
		// Stats live on the layer; fish them out via the stack is not
		// exposed, so recompute from network stats instead.
		break
	}
	_ = retx
	if c.Net.Stats().Dropped == 0 {
		t.Error("test network dropped nothing; loss path unexercised")
	}
}

func TestRecoveryFromDuplication(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, DupProb: 0.5}
	c := cluster(t, 3, cfg, 2)
	const n = 20
	for i := 0; i < n; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(5 * time.Second)
	if got := c.Bodies(1); len(got) != n {
		t.Fatalf("delivered %d, want exactly %d (duplicates suppressed)", len(got), n)
	}
}

func TestRecoveryFromReordering(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, Jitter: 10 * time.Millisecond}
	c := cluster(t, 5, cfg, 2)
	const n = 30
	for i := 0; i < n; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(5 * time.Second)
	got := c.Bodies(1)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, b := range got {
		if b != fmt.Sprintf("m%02d", i) {
			t.Fatalf("order violated under jitter: %v", got)
		}
	}
}

func TestMultipleSimultaneousSenders(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond, DropProb: 0.2}
	c := cluster(t, 11, cfg, 3)
	const per = 10
	for i := 0; i < per; i++ {
		for s := 0; s < 3; s++ {
			if err := c.Cast(ids.ProcID(s), []byte(fmt.Sprintf("s%d-%02d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(20 * time.Second)
	for p := 0; p < 3; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != 3*per {
			t.Fatalf("member %d delivered %d, want %d", p, len(got), 3*per)
		}
		// Per-sender FIFO must hold even though streams interleave.
		next := map[byte]int{}
		for _, b := range got {
			s := b[1]
			var idx int
			if _, err := fmt.Sscanf(b[3:], "%d", &idx); err != nil {
				t.Fatal(err)
			}
			if idx != next[s] {
				t.Fatalf("member %d: sender %c out of order: got %s want index %d", p, s, b, next[s])
			}
			next[s]++
		}
	}
}

func TestGarbageCollection(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
	var layers []*Layer
	c, err := ptest.New(1, cfg, 2, func(proto.Env) []proto.Layer {
		l := New(Config{AckInterval: 10 * time.Millisecond})
		layers = append(layers, l)
		return []proto.Layer{l}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Cast(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * time.Second)
	sender := layers[0]
	if n := len(sender.castOut); n != 0 {
		t.Errorf("castOut retained %d packets after acks; GC failed", n)
	}
}

func TestHeartbeatRepairsTailLoss(t *testing.T) {
	// Drop the initial transmissions deterministically via Block, then
	// heal: only heartbeats can reveal the missing tail.
	cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 2)
	c.Net.Block(0, 1)
	if err := c.Cast(0, []byte("lost-tail")); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Millisecond) // transmission dropped
	c.Net.Unblock(0, 1)
	c.Run(time.Second)
	if got := c.Bodies(1); len(got) != 1 || got[0] != "lost-tail" {
		t.Fatalf("tail loss not repaired: %v", got)
	}
}

func TestFlowControlWindow(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
	var layers []*Layer
	c, err := ptest.New(1, cfg, 2, func(proto.Env) []proto.Layer {
		l := New(Config{CastWindow: 3, AckInterval: 5 * time.Millisecond})
		layers = append(layers, l)
		return []proto.Layer{l}
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sender := layers[0]
	// Only the window's worth went out immediately; the rest queued.
	if got := sender.Stats().CastsSent; got != 3 {
		t.Fatalf("CastsSent = %d immediately, want 3 (window)", got)
	}
	if sender.QueuedCasts() != n-3 {
		t.Fatalf("QueuedCasts = %d, want %d", sender.QueuedCasts(), n-3)
	}
	if sender.Stats().CastsQueued != n-3 {
		t.Fatalf("CastsQueued stat = %d, want %d", sender.Stats().CastsQueued, n-3)
	}
	// Acks open the window; everything drains in order.
	c.Run(5 * time.Second)
	got := c.Bodies(1)
	if len(got) != n {
		t.Fatalf("delivered %d/%d with flow control", len(got), n)
	}
	for i, b := range got {
		if b != fmt.Sprintf("m%d", i) {
			t.Fatalf("order violated under flow control: %v", got)
		}
	}
	if sender.QueuedCasts() != 0 {
		t.Error("queue not drained")
	}
}

func TestFlowControlUnderLoss(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond, DropProb: 0.25}
	c, err := ptest.New(5, cfg, 3, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(Config{CastWindow: 2})}
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 15
	for i := 0; i < n; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(30 * time.Second)
	for p := 1; p < 3; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != n {
			t.Fatalf("member %d delivered %d/%d under loss with window 2", p, len(got), n)
		}
	}
}

func TestStopCancelsTimers(t *testing.T) {
	cfg := simnet.Config{Nodes: 2}
	c := cluster(t, 1, cfg, 2)
	if err := c.Cast(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	c.Stop()
	// After Stop, the simulator must drain: no self-rearming timers.
	if err := c.Sim.Run(100000); err != nil {
		t.Errorf("timers kept rearming after Stop: %v", err)
	}
}

func TestRecvIgnoresGarbage(t *testing.T) {
	cfg := simnet.Config{Nodes: 2}
	c := cluster(t, 1, cfg, 2)
	// Inject junk straight into member 1's stack.
	c.Members[1].Stack.Recv(0, []byte{})
	c.Members[1].Stack.Recv(0, []byte{99, 1, 2})
	c.Members[1].Stack.Recv(0, []byte{kindCast}) // truncated seq
	c.Run(time.Second)
	if got := c.Bodies(1); len(got) != 0 {
		t.Errorf("garbage produced deliveries: %v", got)
	}
}

func TestInitNilWiring(t *testing.T) {
	l := New(Config{})
	if err := l.Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ResendInterval <= 0 || c.AckInterval <= 0 || c.HeartbeatInterval <= 0 {
		t.Errorf("withDefaults left zero intervals: %+v", c)
	}
}

func TestStatsCounters(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, DropProb: 0.3, PropDelay: time.Millisecond}
	var layers []*Layer
	c, err := ptest.New(13, cfg, 2, func(proto.Env) []proto.Layer {
		l := New(Config{})
		layers = append(layers, l)
		return []proto.Layer{l}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := c.Cast(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(10 * time.Second)
	if got := layers[0].Stats(); got.CastsSent != 30 {
		t.Errorf("CastsSent = %d, want 30", got.CastsSent)
	}
	totalRetx := layers[0].Stats().Retransmits + layers[1].Stats().Retransmits
	if totalRetx == 0 {
		t.Error("no retransmissions under 30% loss")
	}
}
