package noreplay

import (
	"testing"

	"repro/internal/protocols/ptest"
)

func newSharedUnit(t *testing.T, h *History) (*Layer, *ptest.RecordUp) {
	t.Helper()
	l := NewShared(h)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	return l, up
}

// TestSharedHistorySuppressesAcrossInstances is the §6.2 composability
// fix in miniature: two layer instances — one per "protocol execution"
// — share a History, so a body delivered through the first is
// suppressed by the second.
func TestSharedHistorySuppressesAcrossInstances(t *testing.T) {
	h := NewHistory()
	l1, up1 := newSharedUnit(t, h)
	l2, up2 := newSharedUnit(t, h)

	l1.Recv(1, []byte("body"))
	l2.Recv(1, []byte("body")) // replay through the *other* instance
	if len(up1.Deliveries) != 1 || len(up2.Deliveries) != 0 {
		t.Fatalf("deliveries = %d/%d, want 1/0", len(up1.Deliveries), len(up2.Deliveries))
	}
	if l2.Suppressed() != 1 {
		t.Errorf("second instance Suppressed = %d, want 1", l2.Suppressed())
	}
	if h.Len() != 1 {
		t.Errorf("history records %d bodies, want 1", h.Len())
	}
}

// TestPrivateHistoriesStillIndependent: New() keeps the legacy per-
// instance semantics — the violation the switching tests demonstrate
// must stay demonstrable.
func TestPrivateHistoriesStillIndependent(t *testing.T) {
	l1, up1 := newSharedUnit(t, nil) // nil history → fresh private one
	l2 := New()
	up2 := &ptest.RecordUp{}
	if err := l2.Init(ptest.NewFakeEnv(1, 2), &ptest.RecordDown{}, up2); err != nil {
		t.Fatal(err)
	}
	l1.Recv(1, []byte("body"))
	l2.Recv(1, []byte("body"))
	if len(up1.Deliveries) != 1 || len(up2.Deliveries) != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1 (independent histories)",
			len(up1.Deliveries), len(up2.Deliveries))
	}
}

// TestSharedKeyedExtractsBody: NewSharedKeyed suppresses on the
// extracted body even when the framing differs between instances.
func TestSharedKeyedExtractsBody(t *testing.T) {
	h := NewHistory()
	stripFirst := func(b []byte) []byte { return b[1:] }
	mk := func(self int) (*Layer, *ptest.RecordUp) {
		l := NewSharedKeyed(h, stripFirst)
		up := &ptest.RecordUp{}
		if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
			t.Fatal(err)
		}
		return l, up
	}
	l1, up1 := mk(0)
	l2, up2 := mk(1)
	l1.Recv(1, []byte("Abody")) // framing byte 'A'
	l2.Recv(1, []byte("Bbody")) // different framing, same body
	if len(up1.Deliveries) != 1 || len(up2.Deliveries) != 0 || l2.Suppressed() != 1 {
		t.Fatalf("keyed shared suppression failed: %d/%d suppressed=%d",
			len(up1.Deliveries), len(up2.Deliveries), l2.Suppressed())
	}
}
