// Package noreplay implements the No Replay property of Table 1 of the
// paper — "a message body can be delivered at most once to a process" —
// by remembering a digest of every delivered payload and suppressing
// repeats.
//
// No Replay is the paper's canonical example of a *memoryless but not
// composable* property (§6.2): each instance of this layer enforces the
// property within its own execution, yet gluing two executions together
// — exactly what the switching protocol does — can deliver the same body
// once per protocol. The switching package's tests demonstrate the
// violation live.
//
// The paper also notes (§6.1) that a memoryless property need not have a
// stateless implementation: this layer keeps state for every body it has
// ever delivered.
package noreplay

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
)

// History is the record of delivered bodies. Each New() layer owns a
// private one — the §6.2 semantics, where the property holds per
// protocol execution only. A single History shared across the layer
// instances of several protocols (NewShared) is what makes No Replay
// survive a protocol switch: the window persists across the epoch
// boundary instead of resetting with the new protocol's fresh instance.
type History struct {
	seen map[[sha256.Size]byte]bool
}

// NewHistory returns an empty delivered-body record.
func NewHistory() *History {
	return &History{seen: make(map[[sha256.Size]byte]bool)}
}

// Len returns the number of distinct bodies recorded.
func (h *History) Len() int { return len(h.seen) }

// Layer suppresses repeated payload bodies.
type Layer struct {
	env  proto.Env
	down proto.Down
	up   proto.Up
	hist *History
	// key extracts the "body" replay protection applies to.
	key func([]byte) []byte
	// suppressed counts dropped replays (metrics/test hook).
	suppressed uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates a no-replay layer with an empty private history, keyed on
// the whole payload.
func New() *Layer {
	return NewKeyed(nil)
}

// NewKeyed creates a no-replay layer whose replay key is key(payload)
// instead of the whole payload — e.g. the application body extracted
// from a framed message, so that transport framing (sequence numbers,
// epoch tags) does not defeat suppression. A nil key means identity.
func NewKeyed(key func([]byte) []byte) *Layer {
	return NewSharedKeyed(NewHistory(), key)
}

// NewShared creates a no-replay layer recording into the given shared
// history, keyed on the whole payload. Hand the same History to one
// instance per switchable protocol and the replay window survives
// protocol switches — the composability fix for §6.2.
func NewShared(h *History) *Layer {
	return NewSharedKeyed(h, nil)
}

// NewSharedKeyed combines NewShared and NewKeyed.
func NewSharedKeyed(h *History, key func([]byte) []byte) *Layer {
	if h == nil {
		h = NewHistory()
	}
	if key == nil {
		key = func(b []byte) []byte { return b }
	}
	return &Layer{hist: h, key: key}
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("noreplay: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Suppressed returns the number of replayed bodies dropped.
func (l *Layer) Suppressed() uint64 { return l.suppressed }

// Cast implements proto.Layer (passthrough).
func (l *Layer) Cast(payload []byte) error { return l.down.Cast(payload) }

// Send implements proto.Layer (passthrough).
func (l *Layer) Send(dst ids.ProcID, payload []byte) error {
	return l.down.Send(dst, payload)
}

// Recv implements proto.Layer: deliver each distinct body at most once
// per history.
func (l *Layer) Recv(src ids.ProcID, payload []byte) {
	key := sha256.Sum256(l.key(payload))
	if l.hist.seen[key] {
		l.suppressed++
		return
	}
	l.hist.seen[key] = true
	l.up.Deliver(src, payload)
}
