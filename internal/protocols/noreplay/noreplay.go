// Package noreplay implements the No Replay property of Table 1 of the
// paper — "a message body can be delivered at most once to a process" —
// by remembering a digest of every delivered payload and suppressing
// repeats.
//
// No Replay is the paper's canonical example of a *memoryless but not
// composable* property (§6.2): each instance of this layer enforces the
// property within its own execution, yet gluing two executions together
// — exactly what the switching protocol does — can deliver the same body
// once per protocol. The switching package's tests demonstrate the
// violation live.
//
// The paper also notes (§6.1) that a memoryless property need not have a
// stateless implementation: this layer keeps state for every body it has
// ever delivered.
package noreplay

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
)

// Layer suppresses repeated payload bodies.
type Layer struct {
	env  proto.Env
	down proto.Down
	up   proto.Up
	seen map[[sha256.Size]byte]bool
	// key extracts the "body" replay protection applies to.
	key func([]byte) []byte
	// suppressed counts dropped replays (metrics/test hook).
	suppressed uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates a no-replay layer with an empty history, keyed on the
// whole payload.
func New() *Layer {
	return NewKeyed(nil)
}

// NewKeyed creates a no-replay layer whose replay key is key(payload)
// instead of the whole payload — e.g. the application body extracted
// from a framed message, so that transport framing (sequence numbers,
// epoch tags) does not defeat suppression. A nil key means identity.
func NewKeyed(key func([]byte) []byte) *Layer {
	if key == nil {
		key = func(b []byte) []byte { return b }
	}
	return &Layer{seen: make(map[[sha256.Size]byte]bool), key: key}
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("noreplay: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Suppressed returns the number of replayed bodies dropped.
func (l *Layer) Suppressed() uint64 { return l.suppressed }

// Cast implements proto.Layer (passthrough).
func (l *Layer) Cast(payload []byte) error { return l.down.Cast(payload) }

// Send implements proto.Layer (passthrough).
func (l *Layer) Send(dst ids.ProcID, payload []byte) error {
	return l.down.Send(dst, payload)
}

// Recv implements proto.Layer: deliver each distinct body at most once.
func (l *Layer) Recv(src ids.ProcID, payload []byte) {
	key := sha256.Sum256(l.key(payload))
	if l.seen[key] {
		l.suppressed++
		return
	}
	l.seen[key] = true
	l.up.Deliver(src, payload)
}
