package noreplay

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func newUnit(t *testing.T) (*Layer, *ptest.RecordDown, *ptest.RecordUp) {
	t.Helper()
	l := New()
	down := &ptest.RecordDown{}
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, up); err != nil {
		t.Fatal(err)
	}
	return l, down, up
}

func TestFirstDeliveryPasses(t *testing.T) {
	l, _, up := newUnit(t)
	l.Recv(1, []byte("body"))
	if len(up.Deliveries) != 1 || l.Suppressed() != 0 {
		t.Errorf("first delivery: delivered=%d suppressed=%d", len(up.Deliveries), l.Suppressed())
	}
}

func TestReplaySuppressed(t *testing.T) {
	l, _, up := newUnit(t)
	l.Recv(1, []byte("body"))
	l.Recv(1, []byte("body")) // replayed identical body
	l.Recv(2, []byte("body")) // same body from another source: still a replay
	if got := len(up.Deliveries); got != 1 {
		t.Errorf("delivered %d, want 1", got)
	}
	if l.Suppressed() != 2 {
		t.Errorf("Suppressed = %d, want 2", l.Suppressed())
	}
}

func TestDistinctBodiesPass(t *testing.T) {
	l, _, up := newUnit(t)
	l.Recv(1, []byte("a"))
	l.Recv(1, []byte("b"))
	l.Recv(1, []byte("c"))
	if got := len(up.Deliveries); got != 3 {
		t.Errorf("delivered %d, want 3", got)
	}
}

func TestPassthroughDown(t *testing.T) {
	l, down, _ := newUnit(t)
	if err := l.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(down.Casts) != 1 || len(down.Sends) != 1 {
		t.Error("cast/send not passed through")
	}
}

func TestReplayAttackOverNetwork(t *testing.T) {
	// An adversary replays a captured packet; the layer suppresses it.
	var layers []*Layer
	c, err := ptest.New(1, simnet.Config{Nodes: 2, PropDelay: time.Millisecond}, 2,
		func(proto.Env) []proto.Layer {
			l := New()
			layers = append(layers, l)
			return []proto.Layer{l}
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cast(0, []byte("pay $100")); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	// Replay the exact payload twice.
	for i := 0; i < 2; i++ {
		if err := c.Net.Inject(0, 1, []byte("pay $100")); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	if got := c.Bodies(1); len(got) != 1 {
		t.Fatalf("replay not suppressed: %v", got)
	}
	if layers[1].Suppressed() != 2 {
		t.Errorf("Suppressed = %d, want 2", layers[1].Suppressed())
	}
}

func TestTwoInstancesDoNotShareHistory(t *testing.T) {
	// The heart of "memoryless but not composable" (§6.2): each
	// instance individually guarantees No Replay, but a body delivered
	// by instance A is happily delivered again by instance B — exactly
	// what happens across a protocol switch.
	a, _, upA := newUnit(t)
	b, _, upB := newUnit(t)
	a.Recv(1, []byte("body"))
	b.Recv(1, []byte("body"))
	if len(upA.Deliveries) != 1 || len(upB.Deliveries) != 1 {
		t.Fatal("instances misbehaved individually")
	}
	// The concatenated history delivered "body" twice to process 0.
	total := len(upA.Deliveries) + len(upB.Deliveries)
	if total != 2 {
		t.Fatal("expected the composed execution to deliver the body twice")
	}
}

func TestInitValidation(t *testing.T) {
	if err := New().Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}

func TestEmptyBody(t *testing.T) {
	l, _, up := newUnit(t)
	l.Recv(1, nil)
	l.Recv(1, []byte{})
	if len(up.Deliveries) != 1 {
		t.Errorf("empty body should count as one body; delivered %d", len(up.Deliveries))
	}
}
