package ptest

import (
	"math/rand"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
)

// FakeEnv is a minimal in-memory proto.Env for layer unit tests that do
// not need a simulated network.
type FakeEnv struct {
	Me    ids.ProcID
	Group []ids.ProcID
	ring  *ids.Ring
	rng   *rand.Rand
	Clock time.Duration
}

var _ proto.Env = (*FakeEnv)(nil)

// NewFakeEnv returns a FakeEnv for process self in a group of size n.
func NewFakeEnv(self ids.ProcID, n int) *FakeEnv {
	ring, err := ids.NewRing(ids.Procs(n))
	if err != nil {
		panic(err) // test-only constructor with valid-by-construction args
	}
	return &FakeEnv{
		Me:    self,
		Group: ids.Procs(n),
		ring:  ring,
		rng:   rand.New(rand.NewSource(1)),
	}
}

// Self implements proto.Env.
func (e *FakeEnv) Self() ids.ProcID { return e.Me }

// Members implements proto.Env.
func (e *FakeEnv) Members() []ids.ProcID { return e.Group }

// Ring implements proto.Env.
func (e *FakeEnv) Ring() *ids.Ring { return e.ring }

// Now implements proto.Env.
func (e *FakeEnv) Now() time.Duration { return e.Clock }

// After implements proto.Env; the timer never fires.
func (e *FakeEnv) After(time.Duration, func()) proto.Timer { return NopTimer{} }

// Rand implements proto.Env.
func (e *FakeEnv) Rand() *rand.Rand { return e.rng }

// NopTimer is an inert proto.Timer.
type NopTimer struct{}

// Stop implements proto.Timer.
func (NopTimer) Stop() bool { return false }

// Active implements proto.Timer.
func (NopTimer) Active() bool { return false }

// RecordDown records everything pushed through it.
type RecordDown struct {
	Casts [][]byte
	Sends []struct {
		Dst     ids.ProcID
		Payload []byte
	}
}

var _ proto.Down = (*RecordDown)(nil)

// Cast implements proto.Down.
func (d *RecordDown) Cast(payload []byte) error {
	d.Casts = append(d.Casts, append([]byte(nil), payload...))
	return nil
}

// Send implements proto.Down.
func (d *RecordDown) Send(dst ids.ProcID, payload []byte) error {
	d.Sends = append(d.Sends, struct {
		Dst     ids.ProcID
		Payload []byte
	}{dst, append([]byte(nil), payload...)})
	return nil
}

// RecordUp records deliveries.
type RecordUp struct {
	Deliveries []Delivery
}

var _ proto.Up = (*RecordUp)(nil)

// Deliver implements proto.Up.
func (u *RecordUp) Deliver(src ids.ProcID, payload []byte) {
	u.Deliveries = append(u.Deliveries, Delivery{Src: src, Payload: append([]byte(nil), payload...)})
}

// Bodies returns delivered payloads as strings.
func (u *RecordUp) Bodies() []string {
	var out []string
	for _, d := range u.Deliveries {
		out = append(out, string(d.Payload))
	}
	return out
}
