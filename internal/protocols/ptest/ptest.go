// Package ptest provides shared scaffolding for protocol-layer tests:
// it assembles a simulated group in which every member runs the same
// stack and records deliveries, optionally as paper-style traces.
package ptest

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Delivery is one record of an app-level delivery.
type Delivery struct {
	At      time.Duration
	Src     ids.ProcID
	Payload []byte
}

// Member is one process under test.
type Member struct {
	Node      *simenv.Node
	Stack     *proto.Stack
	Delivered []Delivery
}

// Cluster is a simulated group running identical stacks.
type Cluster struct {
	Sim     *des.Sim
	Net     *simnet.Network
	Group   *simenv.Group
	Members []*Member
}

// StackFactory builds the layer list (top first) for one member.
type StackFactory func(env proto.Env) []proto.Layer

// New builds an n-member cluster with the given network config and stack
// factory, seeding the simulator with seed. Every member's application
// records deliveries into Member.Delivered.
func New(seed int64, cfg simnet.Config, n int, factory StackFactory) (*Cluster, error) {
	return NewWithApp(seed, cfg, n, factory, nil)
}

// AppFactory builds the application endpoint for one member. m is the
// member under construction (its Stack field is not yet set); sim is
// the shared simulator for timestamps.
type AppFactory func(m *Member, sim *des.Sim) proto.Up

// NewWithApp is New with a custom application per member. A nil appFor
// installs the default recording application.
func NewWithApp(seed int64, cfg simnet.Config, n int, factory StackFactory, appFor AppFactory) (*Cluster, error) {
	sim := des.New(seed)
	net, err := simnet.New(sim, cfg)
	if err != nil {
		return nil, err
	}
	group, err := simenv.NewGroup(sim, net, n)
	if err != nil {
		return nil, err
	}
	if appFor == nil {
		appFor = func(m *Member, sim *des.Sim) proto.Up {
			return proto.UpFunc(func(src ids.ProcID, payload []byte) {
				buf := make([]byte, len(payload))
				copy(buf, payload)
				m.Delivered = append(m.Delivered, Delivery{At: sim.Now(), Src: src, Payload: buf})
			})
		}
	}
	c := &Cluster{Sim: sim, Net: net, Group: group}
	for _, node := range group.Nodes() {
		m := &Member{Node: node}
		stack, err := proto.Build(node, appFor(m, sim), node.Transport(), factory(node)...)
		if err != nil {
			return nil, fmt.Errorf("ptest: member %v: %w", node.Self(), err)
		}
		m.Stack = stack
		if err := node.BindStack(stack.Recv); err != nil {
			return nil, err
		}
		c.Members = append(c.Members, m)
	}
	return c, nil
}

// Cast multicasts a payload from member p.
func (c *Cluster) Cast(p ids.ProcID, payload []byte) error {
	return c.Members[p].Stack.Cast(payload)
}

// CastApp multicasts an app message (encoded) from its sender.
func (c *Cluster) CastApp(m proto.AppMsg) error {
	return c.Members[m.Sender].Stack.Cast(m.Encode())
}

// Run drives the simulation until the deadline.
func (c *Cluster) Run(d time.Duration) { c.Sim.RunUntil(d) }

// Stop stops all stacks (cancelling timers so Run can drain).
func (c *Cluster) Stop() {
	for _, m := range c.Members {
		m.Stack.Stop()
	}
}

// Bodies returns the payloads delivered at member p, in order, as
// strings.
func (c *Cluster) Bodies(p ids.ProcID) []string {
	var out []string
	for _, d := range c.Members[p].Delivered {
		out = append(out, string(d.Payload))
	}
	return out
}

// AppBodies decodes deliveries at member p as AppMsgs and returns their
// bodies in delivery order.
func (c *Cluster) AppBodies(p ids.ProcID) ([]string, error) {
	var out []string
	for _, d := range c.Members[p].Delivered {
		m, err := proto.DecodeApp(d.Payload)
		if err != nil {
			return nil, err
		}
		out = append(out, string(m.Body))
	}
	return out, nil
}

// Trace reconstructs a paper-style trace from recorded sends and
// deliveries. Deliveries must decode as AppMsgs. Send events are
// supplied by the caller (it knows when it cast what); they are placed
// before all deliveries.
func (c *Cluster) Trace(sent []proto.AppMsg) (trace.Trace, error) {
	timed := make([]SentMsg, len(sent))
	for i, m := range sent {
		timed[i] = SentMsg{At: -1, Msg: m} // before every delivery
	}
	return c.TraceTimed(timed)
}

// SentMsg records when an application message was cast.
type SentMsg struct {
	At  time.Duration
	Msg proto.AppMsg
}

// TraceTimed reconstructs a trace with Send events interleaved at their
// actual times — required for properties that constrain send ordering
// (Amoeba). Ties are broken with Sends first.
func (c *Cluster) TraceTimed(sent []SentMsg) (trace.Trace, error) {
	type timed struct {
		at     time.Duration
		isSend bool
		ev     trace.Event
	}
	var events []timed
	for _, s := range sent {
		events = append(events, timed{s.At, true, trace.Send(s.Msg.TraceMessage())})
	}
	for _, mem := range c.Members {
		for _, d := range mem.Delivered {
			am, err := proto.DecodeApp(d.Payload)
			if err != nil {
				return nil, fmt.Errorf("ptest: undecodable delivery at %v: %w", mem.Node.Self(), err)
			}
			events = append(events, timed{d.At, false, trace.Deliver(mem.Node.Self(), am.TraceMessage())})
		}
	}
	// Stable insertion sort by (time, sends-first) preserving insertion
	// order among equals.
	less := func(a, b timed) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.isSend && !b.isSend
	}
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && less(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	tr := make(trace.Trace, 0, len(events))
	for _, e := range events {
		tr = append(tr, e.ev)
	}
	return tr, nil
}
