package evenonly

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func TestOddDroppedEvenDelivered(t *testing.T) {
	var layers []*Layer
	c, err := ptest.New(1, simnet.Config{Nodes: 3, PropDelay: time.Millisecond}, 3,
		func(proto.Env) []proto.Layer {
			l := New()
			layers = append(layers, l)
			return []proto.Layer{l, fifo.New(fifo.Config{})}
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * time.Second)
	c.Stop()
	for p := 0; p < 3; p++ {
		got := c.Bodies(ids.ProcID(p))
		want := []string{"m2", "m4", "m6"}
		if len(got) != len(want) {
			t.Fatalf("member %d delivered %v, want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("member %d delivered %v, want %v", p, got, want)
			}
		}
	}
	if layers[0].Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", layers[0].Dropped())
	}
}

func TestPerSenderCounting(t *testing.T) {
	c, err := ptest.New(1, simnet.Config{Nodes: 2, PropDelay: time.Millisecond}, 2,
		func(proto.Env) []proto.Layer {
			return []proto.Layer{New(), fifo.New(fifo.Config{})}
		})
	if err != nil {
		t.Fatal(err)
	}
	// One cast per member: both are their sender's #1 — dropped.
	if err := c.Cast(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Cast(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	c.Stop()
	if got := c.Bodies(0); len(got) != 0 {
		t.Errorf("delivered %v, want nothing (both odd)", got)
	}
}

func TestSendUnsupported(t *testing.T) {
	if err := New().Send(1, nil); err != proto.ErrUnsupported {
		t.Error("Send should be unsupported")
	}
}

func TestInitValidation(t *testing.T) {
	if err := New().Init(nil, nil, nil); err == nil {
		t.Error("nil wiring accepted")
	}
}
