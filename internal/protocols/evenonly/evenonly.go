// Package evenonly materializes the paper's §5.1 thought experiment: a
// protocol whose only guarantee is that "every second message is
// eventually delivered". Odd-numbered casts (per sender) are dropped
// deliberately; even-numbered ones ride the reliable layer below.
//
// The §5.1 point, demonstrated live in the switching tests: each
// instance counts "second" within its own stream, so when the switching
// protocol splits a sender's stream across two instances, a globally
// even-numbered message can land as a locally odd-numbered one — and
// neither protocol owes it delivery. The property is not safe, not
// send-enabled, not memoryless and not composable (see
// property.EverySecondDelivered and the metaprop extension matrix);
// the SP preserves none of the guarantees it would need.
package evenonly

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
)

// Layer drops each sender's odd-numbered casts.
type Layer struct {
	env  proto.Env
	down proto.Down
	up   proto.Up
	// sent counts this process's casts; odd ones are dropped.
	sent uint64
	// dropped counts deliberately dropped casts.
	dropped uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates an every-second-only layer.
func New() *Layer { return &Layer{} }

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("evenonly: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Dropped returns the number of odd-numbered casts discarded.
func (l *Layer) Dropped() uint64 { return l.dropped }

// Cast implements proto.Layer: forward even-numbered casts, drop the
// rest — precisely the §5.1 contract, nothing more.
func (l *Layer) Cast(payload []byte) error {
	l.sent++
	if l.sent%2 != 0 {
		l.dropped++
		return nil
	}
	return l.down.Cast(payload)
}

// Send implements proto.Layer: not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// Recv implements proto.Layer (passthrough).
func (l *Layer) Recv(src ids.ProcID, payload []byte) {
	l.up.Deliver(src, payload)
}
