package vsync

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/simnet"
)

func newUnit(t *testing.T, self ids.ProcID, n int) (*Layer, *ptest.RecordDown, *ptest.RecordUp) {
	t.Helper()
	l := New()
	down := &ptest.RecordDown{}
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(self, n), down, up); err != nil {
		t.Fatal(err)
	}
	return l, down, up
}

func TestInitialViewIsFullGroup(t *testing.T) {
	l, _, _ := newUnit(t, 0, 3)
	for p := 0; p < 3; p++ {
		if !l.InView(ids.ProcID(p)) {
			t.Errorf("p%d missing from initial view", p)
		}
	}
	if l.ViewSeq() != 0 {
		t.Errorf("ViewSeq = %d, want 0", l.ViewSeq())
	}
}

func TestDataFromViewMemberDelivers(t *testing.T) {
	recv, _, up := newUnit(t, 0, 3)
	sender, down, _ := newUnit(t, 1, 3)
	if err := sender.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	recv.Recv(1, down.Casts[0])
	if len(up.Deliveries) != 1 {
		t.Fatal("in-view data not delivered")
	}
}

func TestViewInstallAndExclusion(t *testing.T) {
	recv, _, up := newUnit(t, 0, 3)
	installer, insDown, _ := newUnit(t, 1, 3)
	// Install view {0, 1}, excluding p2.
	if err := installer.InstallView([]ids.ProcID{0, 1}, []byte("view-msg")); err != nil {
		t.Fatal(err)
	}
	recv.Recv(1, insDown.Casts[0])
	if recv.ViewSeq() != 1 {
		t.Fatalf("ViewSeq = %d, want 1", recv.ViewSeq())
	}
	if len(up.Deliveries) != 1 || string(up.Deliveries[0].Payload) != "view-msg" {
		t.Fatal("view message not delivered to app")
	}
	if recv.InView(2) {
		t.Error("p2 still in view after exclusion")
	}
	// Data from the excluded member is dropped.
	outsider, outDown, _ := newUnit(t, 2, 3)
	if err := outsider.Cast([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
	recv.Recv(2, outDown.Casts[0])
	if len(up.Deliveries) != 1 {
		t.Error("out-of-view data delivered")
	}
	if recv.Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", recv.Rejected())
	}
}

func TestEmptyViewRejected(t *testing.T) {
	l, _, _ := newUnit(t, 0, 2)
	if err := l.InstallView(nil, nil); err == nil {
		t.Error("InstallView accepted empty view")
	}
}

func TestEndToEndOverTotalOrder(t *testing.T) {
	// vsync above sequencer total order: all members observe the view
	// change at the same point in the delivery order.
	var layers []*Layer
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c, err := ptest.New(1, cfg, 3, func(proto.Env) []proto.Layer {
		l := New()
		layers = append(layers, l)
		return []proto.Layer{l, seqorder.New(0), fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cast(2, []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	if err := layers[0].InstallView([]ids.ProcID{0, 1}, []byte("VIEW")); err != nil {
		t.Fatal(err)
	}
	c.Run(200 * time.Millisecond)
	// p2 is now out of the view: its casts are dropped at receivers.
	if err := c.Cast(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := c.Cast(1, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	for p := 0; p < 2; p++ {
		got := c.Bodies(ids.ProcID(p))
		want := []string{"before", "VIEW", "legit"}
		if len(got) != len(want) {
			t.Fatalf("member %d delivered %v, want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("member %d delivered %v, want %v", p, got, want)
			}
		}
	}
}

func TestSendUnsupported(t *testing.T) {
	if err := New().Send(1, nil); err != proto.ErrUnsupported {
		t.Error("Send should be unsupported")
	}
}

func TestInitValidation(t *testing.T) {
	if err := New().Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}

func TestGarbageIgnored(t *testing.T) {
	l, _, up := newUnit(t, 0, 2)
	l.Recv(1, nil)
	l.Recv(1, []byte{kindView}) // truncated members
	l.Recv(1, []byte{99})
	if len(up.Deliveries) != 0 || l.ViewSeq() != 0 {
		t.Error("garbage affected state")
	}
}
