// Package vsync implements a virtual-synchrony view layer in the style
// of Table 1 of the paper: "a process only delivers messages from
// processes in some common view". View changes are themselves messages
// carrying the new membership; a process's current view is the
// membership of the last view message it delivered, and data from
// senders outside the current view is discarded.
//
// Virtual Synchrony is the paper's example of a property that is *not
// memoryless* (§6.1): erase the view-change message from the history and
// deliveries that were legal become illegal. Accordingly, switching
// between two virtually synchronous protocol instances does not yield a
// virtually synchronous execution — but, as §8 anticipates, performing
// the switch *as part of a view change* does. Both facts are
// demonstrated in this package's and the switching package's tests.
//
// The layer must run above a total-order protocol so all members observe
// views and data in a single order.
package vsync

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

const (
	// kindData carries an application payload.
	kindData uint8 = iota + 1
	// kindView installs a new view: {members, payload}.
	kindView
)

// Layer gates deliveries on view membership.
type Layer struct {
	env  proto.Env
	down proto.Down
	up   proto.Up

	// view is the current membership (last delivered view message; the
	// initial view is the full group).
	view map[ids.ProcID]bool
	// viewSeq counts installed views (initial view is 0).
	viewSeq uint64
	// rejected counts data dropped for out-of-view senders.
	rejected uint64
	// malformed counts packets dropped by the defensive ingress
	// (decode failure or unknown kind) before any state mutation.
	malformed uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates a vsync layer.
func New() *Layer { return &Layer{} }

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("vsync: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	l.view = make(map[ids.ProcID]bool)
	for _, m := range env.Members() {
		l.view[m] = true
	}
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// ViewSeq returns the number of views installed so far.
func (l *Layer) ViewSeq() uint64 { return l.viewSeq }

// InView reports whether p is in the current view.
func (l *Layer) InView(p ids.ProcID) bool { return l.view[p] }

// Rejected returns the number of out-of-view data messages dropped.
func (l *Layer) Rejected() uint64 { return l.rejected }

// Cast implements proto.Layer.
func (l *Layer) Cast(payload []byte) error {
	e := wire.NewEncoder(2)
	e.U8(kindData)
	return l.down.Cast(e.Prepend(payload))
}

// Send implements proto.Layer: not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// InstallView multicasts a view change. members is the new membership;
// payload is the application-level view message delivered to every
// member (typically an encoded AppMsg with IsView set, so traces record
// the view change).
func (l *Layer) InstallView(members []ids.ProcID, payload []byte) error {
	if len(members) == 0 {
		return fmt.Errorf("vsync: empty view")
	}
	e := wire.NewEncoder(16)
	e.U8(kindView).Procs(members)
	return l.down.Cast(e.Prepend(payload))
}

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindData:
		if d.Err() != nil {
			return
		}
		if !l.view[src] {
			l.rejected++
			return
		}
		l.up.Deliver(src, d.Remaining())
	case kindView:
		members := d.Procs()
		if d.Err() != nil || len(members) == 0 {
			l.malformed++
			return
		}
		next := make(map[ids.ProcID]bool, len(members))
		for _, m := range members {
			next[m] = true
		}
		l.view = next
		l.viewSeq++
		l.up.Deliver(src, d.Remaining())
	default:
		l.malformed++
	}
}

// MalformedDropped returns how many packets the defensive ingress
// rejected (decode failure or unknown kind).
func (l *Layer) MalformedDropped() uint64 { return l.malformed }
