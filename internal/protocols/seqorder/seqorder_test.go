package seqorder

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func cluster(t *testing.T, seed int64, cfg simnet.Config, n int) *ptest.Cluster {
	t.Helper()
	c, err := ptest.New(seed, cfg, n, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(0), fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertTotalOrder checks that all members delivered exactly the same
// sequence of bodies.
func assertTotalOrder(t *testing.T, c *ptest.Cluster, wantCount int) {
	t.Helper()
	ref := c.Bodies(0)
	if len(ref) != wantCount {
		t.Fatalf("member 0 delivered %d, want %d: %v", len(ref), wantCount, ref)
	}
	for p := 1; p < len(c.Members); p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != len(ref) {
			t.Fatalf("member %d delivered %d, member 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %d disagrees at %d: %q vs %q", p, i, got[i], ref[i])
			}
		}
	}
}

func TestSingleSenderTotalOrder(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 4)
	for i := 0; i < 10; i++ {
		if err := c.Cast(2, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	assertTotalOrder(t, c, 10)
}

func TestConcurrentSendersAgree(t *testing.T) {
	cfg := simnet.Config{Nodes: 5, PropDelay: time.Millisecond, Jitter: 2 * time.Millisecond}
	c := cluster(t, 3, cfg, 5)
	for i := 0; i < 8; i++ {
		for s := 0; s < 5; s++ {
			if err := c.Cast(ids.ProcID(s), []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(5 * time.Second)
	assertTotalOrder(t, c, 40)
}

func TestSequencerAsSender(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 3)
	if err := c.Cast(0, []byte("from-sequencer")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	assertTotalOrder(t, c, 1)
}

func TestTotalOrderUnderLoss(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond, DropProb: 0.2}
	c := cluster(t, 9, cfg, 4)
	for i := 0; i < 10; i++ {
		for s := 0; s < 4; s++ {
			if err := c.Cast(ids.ProcID(s), []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(30 * time.Second)
	assertTotalOrder(t, c, 40)
}

func TestPerSenderFIFOWithinTotalOrder(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 5, cfg, 3)
	for i := 0; i < 5; i++ {
		if err := c.Cast(1, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	got := c.Bodies(2)
	for i, b := range got {
		if b != fmt.Sprintf("%d", i) {
			t.Fatalf("per-sender FIFO violated: %v", got)
		}
	}
}

func TestOriginIsReported(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 3)
	if err := c.Cast(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	// Receivers must see the origin, not the sequencer, as src.
	d := c.Members[1].Delivered
	if len(d) != 1 || d[0].Src != 2 {
		t.Fatalf("delivery = %+v, want src p2", d)
	}
}

func TestSendUnsupported(t *testing.T) {
	l := New(0)
	if err := l.Send(1, nil); err != proto.ErrUnsupported {
		t.Errorf("Send = %v, want ErrUnsupported", err)
	}
}

func TestInitValidation(t *testing.T) {
	l := New(0)
	if err := l.Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
	// Sequencer outside the group.
	if _, err := ptest.New(1, simnet.Config{Nodes: 2}, 2, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(7), fifo.New(fifo.Config{})}
	}); err == nil {
		t.Error("Init accepted sequencer outside the group")
	}
}

func TestRecvIgnoresGarbage(t *testing.T) {
	cfg := simnet.Config{Nodes: 2}
	c := cluster(t, 1, cfg, 2)
	c.Members[1].Stack.Recv(0, nil)
	// Craft a truncated kindOrder directly into the order layer — the
	// stack bottom is fifo, so feed via a fresh layer instead.
	l := New(0)
	l.Recv(0, []byte{2}) // kindOrder, truncated
	l.Recv(0, []byte{1}) // kindSubmit at non-sequencer
	c.Run(100 * time.Millisecond)
	if got := c.Bodies(1); len(got) != 0 {
		t.Errorf("garbage delivered: %v", got)
	}
}

func TestNonSequencerIgnoresSubmit(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 3)
	// Member 1 is not the sequencer; a submit reaching it must be
	// dropped rather than ordered.
	sub := append([]byte{1}, []byte("evil")...)
	c.Members[1].Stack.Recv(2, sub)
	c.Run(time.Second)
	for p := 0; p < 3; p++ {
		if got := c.Bodies(ids.ProcID(p)); len(got) != 0 {
			t.Fatalf("member %d delivered %v", p, got)
		}
	}
}

func TestLatencyIsAboutTwoHops(t *testing.T) {
	// With 1ms propagation and no other costs, a non-sequencer cast
	// takes ~2ms (submit hop + order hop) to reach other members.
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 3)
	if err := c.Cast(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	d := c.Members[2].Delivered
	if len(d) != 1 {
		t.Fatal("no delivery")
	}
	if d[0].At != 2*time.Millisecond {
		t.Errorf("latency = %v, want 2ms (two network hops)", d[0].At)
	}
}
