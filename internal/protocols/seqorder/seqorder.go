// Package seqorder implements sequencer-based total order, the first of
// the two total-ordering mechanisms compared in §7 of the paper
// (Kaashoek et al.'s Amoeba-style protocol [8]): messages are sent in
// FIFO order to a centralized sequencer, which assigns global sequence
// numbers and forwards them by multicast, again in FIFO order.
//
// Its trade-off, visible in Figure 2: low latency — essentially two
// network hops — but the sequencer becomes a bottleneck as the number of
// active senders grows.
//
// The layer expects a reliable FIFO layer beneath it (package fifo).
package seqorder

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

const (
	// kindSubmit carries a message from an origin to the sequencer.
	kindSubmit uint8 = iota + 1
	// kindOrder carries a sequenced message from the sequencer to all.
	kindOrder
)

// maxSeqAhead bounds how far beyond the delivery horizon an arriving
// global sequence number may claim to be. The sequencer assigns seqs
// densely, so a legitimate seq only runs ahead by the messages in
// flight; a corrupted or forged seq far beyond that would poison the
// pending buffer with an entry the delivery loop can never reach.
// Anything further ahead is dropped as malformed.
const maxSeqAhead = 1 << 20

// Layer is one process's instance of the protocol.
type Layer struct {
	sequencer ids.ProcID
	env       proto.Env
	down      proto.Down
	up        proto.Up

	// Sequencer state: next global sequence number to assign.
	nextSeq uint64

	// Receiver state: next global seq to deliver and the reordering
	// buffer (defensive — the fifo below already delivers the
	// sequencer's stream in order, but the layer does not rely on it).
	nextDeliver uint64
	pending     map[uint64]orderedMsg
	// malformed counts packets dropped by the defensive ingress
	// (decode failure or unknown kind) before any state mutation.
	malformed uint64
}

type orderedMsg struct {
	origin  ids.ProcID
	payload []byte
}

var _ proto.Layer = (*Layer)(nil)

// New creates a sequencer-ordered layer. sequencer designates the member
// acting as the sequencer (conventionally member 0).
func New(sequencer ids.ProcID) *Layer {
	return &Layer{
		sequencer: sequencer,
		pending:   make(map[uint64]orderedMsg),
	}
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("seqorder: nil wiring")
	}
	if !env.Ring().Contains(l.sequencer) {
		return fmt.Errorf("seqorder: sequencer %v is not a group member", l.sequencer)
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Cast implements proto.Layer: route the payload through the sequencer.
func (l *Layer) Cast(payload []byte) error {
	if l.env.Self() == l.sequencer {
		// The sequencer orders its own messages directly.
		return l.order(l.env.Self(), payload)
	}
	e := wire.GetEncoder()
	e.U8(kindSubmit)
	// The fifo layer below copies anything it retains, so the frame can
	// ride a pooled encoder.
	err := l.down.Send(l.sequencer, e.Frame(payload))
	wire.PutEncoder(e)
	return err
}

// Send implements proto.Layer. Point-to-point traffic has no total-order
// semantics; it is not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// order assigns the next global sequence number and multicasts. Only the
// sequencer calls this.
func (l *Layer) order(origin ids.ProcID, payload []byte) error {
	seq := l.nextSeq
	l.nextSeq++
	e := wire.GetEncoder()
	e.U8(kindOrder).Uvarint(seq).Proc(origin)
	err := l.down.Cast(e.Frame(payload))
	wire.PutEncoder(e)
	return err
}

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	if l.env == nil {
		return // not initialized
	}
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindSubmit:
		if d.Err() != nil {
			l.malformed++
			return
		}
		if l.env.Self() != l.sequencer {
			return
		}
		// src is the origin: the fifo below reports the true sender.
		_ = l.order(src, d.Remaining())
	case kindOrder:
		seq := d.Uvarint()
		origin := d.Proc()
		if d.Err() != nil || seq > l.nextDeliver+maxSeqAhead {
			l.malformed++
			return
		}
		if seq < l.nextDeliver {
			return // duplicate
		}
		if _, dup := l.pending[seq]; dup {
			return
		}
		l.pending[seq] = orderedMsg{origin: origin, payload: d.Remaining()}
		for {
			m, ok := l.pending[l.nextDeliver]
			if !ok {
				break
			}
			delete(l.pending, l.nextDeliver)
			l.nextDeliver++
			l.up.Deliver(m.origin, m.payload)
		}
	default:
		l.malformed++
	}
}

// MalformedDropped returns how many packets the defensive ingress
// rejected (decode failure or unknown kind).
func (l *Layer) MalformedDropped() uint64 { return l.malformed }
