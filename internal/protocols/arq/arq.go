// Package arq implements two classic point-to-point reliability
// protocols — stop-and-wait and go-back-N — as switchable layers,
// realizing the paper's §1 remark that "our work can easily be
// specialized for point-to-point communication": a two-member group
// under the switching protocol is exactly a switchable point-to-point
// channel.
//
// The two protocols exhibit the same kind of trade-off as the paper's
// total-order pair: stop-and-wait is trivially simple and uses no
// buffering, but its throughput collapses to one frame per round-trip;
// go-back-N pipelines a window of frames, paying buffer space and
// wasted retransmissions under loss. The crossover (link delay ×
// offered load) is reproduced in BenchmarkP2PARQ.
package arq

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Packet kinds shared by both protocols.
const (
	kindData uint8 = iota + 1 // {seq, payload}
	kindAck                   // {cumulative next-expected seq}
)

// Stats counts ARQ activity.
type Stats struct {
	Sent        uint64
	Retransmits uint64
	AcksSent    uint64
	Queued      uint64
	DupsDropped uint64
}

// outState tracks one destination's outgoing stream.
type outState struct {
	nextSeq uint64 // next sequence number to assign
	base    uint64 // oldest unacknowledged seq
	// window holds unacknowledged and queued payloads, indexed from
	// base: window[0] has seq base.
	window [][]byte
	timer  proto.Timer
}

// inState tracks one source's incoming stream.
type inState struct {
	next uint64 // next expected seq
	// ackArmed is set while a delayed cumulative ack is scheduled for
	// this stream (see DelayAcks).
	ackArmed bool
}

// common implements the machinery shared by both ARQ flavours; the
// window size is the only difference (1 = stop-and-wait).
type common struct {
	name    string
	window  int
	timeout time.Duration
	// ackDelay > 0 defers cumulative acks (see DelayAcks): a burst of
	// data frames is answered by one coalesced ack instead of one each.
	ackDelay time.Duration
	env     proto.Env
	down    proto.Down
	up      proto.Up
	out     map[ids.ProcID]*outState
	in      map[ids.ProcID]*inState
	stopped bool
	stats   Stats
	// malformed counts packets dropped by the defensive ingress
	// (decode failure or unknown kind) before any state mutation.
	malformed uint64
}

func newCommon(name string, window int, timeout time.Duration) *common {
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	return &common{
		name:    name,
		window:  window,
		timeout: timeout,
		out:     make(map[ids.ProcID]*outState),
		in:      make(map[ids.ProcID]*inState),
	}
}

// Init implements proto.Layer.
func (c *common) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("%s: nil wiring", c.name)
	}
	c.env, c.down, c.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (c *common) Stop() {
	c.stopped = true
	for _, o := range c.out {
		if o.timer != nil {
			o.timer.Stop()
		}
	}
}

// Stats returns a copy of the counters.
func (c *common) Stats() Stats { return c.stats }

// DelayAcks enables coalesced cumulative acknowledgements: instead of
// acking every data frame immediately (the legacy behaviour, kept when
// d <= 0), the receiver schedules one ack per stream per delay window,
// so a pipelined burst is answered by a single cumulative ack. The
// delay must stay well below the sender's retransmission timeout or
// every burst is needlessly retransmitted; a quarter of the timeout is
// a safe ceiling. Call before traffic starts.
func (c *common) DelayAcks(d time.Duration) { c.ackDelay = d }

// InFlight returns how many frames are unacknowledged toward dst.
func (c *common) InFlight(dst ids.ProcID) int {
	o := c.out[dst]
	if o == nil {
		return 0
	}
	inFlight := int(o.nextSeq - o.base)
	if inFlight > len(o.window) {
		inFlight = len(o.window)
	}
	return inFlight
}

// Cast implements proto.Layer: a multicast over point-to-point ARQ is a
// reliable send to every other member (the sender loops its own copy
// back locally, preserving the group convention).
func (c *common) Cast(payload []byte) error {
	for _, p := range c.env.Members() {
		if p == c.env.Self() {
			continue
		}
		if err := c.Send(p, payload); err != nil {
			return err
		}
	}
	c.up.Deliver(c.env.Self(), payload)
	return nil
}

// Send implements proto.Layer: reliable FIFO unicast.
func (c *common) Send(dst ids.ProcID, payload []byte) error {
	if c.stopped {
		return fmt.Errorf("%s: stopped", c.name)
	}
	o := c.out[dst]
	if o == nil {
		o = &outState{}
		c.out[dst] = o
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	o.window = append(o.window, buf)
	c.pump(dst, o)
	return nil
}

// pump transmits whatever the window permits.
func (c *common) pump(dst ids.ProcID, o *outState) {
	inFlight := int(o.nextSeq - o.base)
	for inFlight < c.window && int(o.nextSeq-o.base) < len(o.window) {
		seq := o.nextSeq
		payload := o.window[seq-o.base]
		o.nextSeq++
		inFlight++
		c.stats.Sent++
		c.transmit(dst, seq, payload)
	}
	if int(o.nextSeq-o.base) < len(o.window) {
		c.stats.Queued++
	}
	c.armTimer(dst, o)
}

func (c *common) transmit(dst ids.ProcID, seq uint64, payload []byte) {
	e := wire.GetEncoder()
	e.U8(kindData).Uvarint(seq)
	// The layer below consumes or copies the frame synchronously, so it
	// can ride a pooled encoder.
	_ = c.down.Send(dst, e.Frame(payload))
	wire.PutEncoder(e)
}

// armTimer (re)starts the retransmission timer while data is in flight.
func (c *common) armTimer(dst ids.ProcID, o *outState) {
	if o.timer != nil && o.timer.Active() {
		return
	}
	if o.base == o.nextSeq {
		return // nothing outstanding
	}
	o.timer = c.env.After(c.timeout, func() {
		if c.stopped {
			return
		}
		c.retransmit(dst, o)
	})
}

// retransmit resends the whole outstanding window (go-back-N semantics;
// with window 1 this is plain stop-and-wait retry).
func (c *common) retransmit(dst ids.ProcID, o *outState) {
	if o.base == o.nextSeq {
		return
	}
	for seq := o.base; seq < o.nextSeq; seq++ {
		c.stats.Retransmits++
		c.transmit(dst, seq, o.window[seq-o.base])
	}
	o.timer = nil
	c.armTimer(dst, o)
}

// sendAck sends one cumulative ack for a stream's current horizon.
func (c *common) sendAck(dst ids.ProcID, in *inState) {
	e := wire.GetEncoder()
	e.U8(kindAck).Uvarint(in.next)
	c.stats.AcksSent++
	_ = c.down.Send(dst, e.Bytes())
	wire.PutEncoder(e)
}

// Recv implements proto.Layer.
func (c *common) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindData:
		seq := d.Uvarint()
		if d.Err() != nil {
			c.malformed++
			return
		}
		in := c.in[src]
		if in == nil {
			in = &inState{}
			c.in[src] = in
		}
		if seq == in.next {
			in.next++
			c.up.Deliver(src, d.Remaining())
		} else {
			c.stats.DupsDropped++
		}
		// Cumulative ack either way (a duplicate means our ack was
		// lost or the sender timed out early) — immediately, or once
		// per delay window when acks are coalesced.
		if c.ackDelay <= 0 {
			c.sendAck(src, in)
		} else if !in.ackArmed {
			in.ackArmed = true
			c.env.After(c.ackDelay, func() {
				in.ackArmed = false
				if c.stopped {
					return
				}
				c.sendAck(src, in)
			})
		}
	case kindAck:
		next := d.Uvarint()
		if d.Err() != nil {
			c.malformed++
			return
		}
		o := c.out[src]
		if o == nil || next <= o.base {
			return
		}
		if next > o.nextSeq {
			next = o.nextSeq
		}
		o.window = o.window[next-o.base:]
		o.base = next
		if o.timer != nil {
			o.timer.Stop()
			o.timer = nil
		}
		c.pump(src, o)
	default:
		c.malformed++
	}
}

// MalformedDropped returns how many packets the defensive ingress
// rejected (decode failure or unknown kind).
func (c *common) MalformedDropped() uint64 { return c.malformed }

// StopAndWait is the window-1 ARQ: one frame in flight per destination.
type StopAndWait struct {
	common
}

var _ proto.Layer = (*StopAndWait)(nil)

// NewStopAndWait creates a stop-and-wait layer. timeout <= 0 defaults
// to 50ms.
func NewStopAndWait(timeout time.Duration) *StopAndWait {
	return &StopAndWait{common: *newCommon("stopwait", 1, timeout)}
}

// GoBackN is the sliding-window ARQ with cumulative acks.
type GoBackN struct {
	common
}

var _ proto.Layer = (*GoBackN)(nil)

// NewGoBackN creates a go-back-N layer with the given window (>= 1;
// values < 1 default to 8). timeout <= 0 defaults to 50ms.
func NewGoBackN(window int, timeout time.Duration) *GoBackN {
	if window < 1 {
		window = 8
	}
	return &GoBackN{common: *newCommon("gobackn", window, timeout)}
}
