package arq

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func p2p(t *testing.T, seed int64, cfg simnet.Config, mk func() proto.Layer) *ptest.Cluster {
	t.Helper()
	c, err := ptest.New(seed, cfg, 2, func(proto.Env) []proto.Layer {
		return []proto.Layer{mk()}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func eachProtocol(t *testing.T, f func(t *testing.T, name string, mk func() proto.Layer)) {
	t.Run("stopwait", func(t *testing.T) {
		f(t, "stopwait", func() proto.Layer { return NewStopAndWait(20 * time.Millisecond) })
	})
	t.Run("gobackn", func(t *testing.T) {
		f(t, "gobackn", func() proto.Layer { return NewGoBackN(8, 20*time.Millisecond) })
	})
	t.Run("selectiverepeat", func(t *testing.T) {
		f(t, "selectiverepeat", func() proto.Layer { return NewSelectiveRepeat(8, 20*time.Millisecond) })
	})
}

func TestReliableFIFODelivery(t *testing.T) {
	eachProtocol(t, func(t *testing.T, name string, mk func() proto.Layer) {
		cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
		c := p2p(t, 1, cfg, mk)
		const n = 10
		for i := 0; i < n; i++ {
			if err := c.Members[0].Stack.Send(1, []byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(5 * time.Second)
		c.Stop()
		got := c.Bodies(1)
		if len(got) != n {
			t.Fatalf("%s delivered %d/%d", name, len(got), n)
		}
		for i, b := range got {
			if b != fmt.Sprintf("m%02d", i) {
				t.Fatalf("%s order violated: %v", name, got)
			}
		}
	})
}

func TestRecoveryFromLoss(t *testing.T) {
	eachProtocol(t, func(t *testing.T, name string, mk func() proto.Layer) {
		cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond, DropProb: 0.3}
		c := p2p(t, 7, cfg, mk)
		const n = 20
		for i := 0; i < n; i++ {
			if err := c.Members[0].Stack.Send(1, []byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(30 * time.Second)
		c.Stop()
		got := c.Bodies(1)
		if len(got) != n {
			t.Fatalf("%s delivered %d/%d under 30%% loss", name, len(got), n)
		}
		for i, b := range got {
			if b != fmt.Sprintf("m%02d", i) {
				t.Fatalf("%s order violated under loss: %v", name, got)
			}
		}
	})
}

func TestRecoveryFromDuplication(t *testing.T) {
	eachProtocol(t, func(t *testing.T, name string, mk func() proto.Layer) {
		cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond, DupProb: 0.4}
		c := p2p(t, 3, cfg, mk)
		const n = 15
		for i := 0; i < n; i++ {
			if err := c.Members[0].Stack.Send(1, []byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(10 * time.Second)
		c.Stop()
		if got := c.Bodies(1); len(got) != n {
			t.Fatalf("%s delivered %d, want exactly %d", name, len(got), n)
		}
	})
}

func TestCastLoopsBackAndReachesPeer(t *testing.T) {
	eachProtocol(t, func(t *testing.T, name string, mk func() proto.Layer) {
		cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
		c := p2p(t, 1, cfg, mk)
		if err := c.Cast(0, []byte("both")); err != nil {
			t.Fatal(err)
		}
		c.Run(time.Second)
		c.Stop()
		for p := 0; p < 2; p++ {
			if got := c.Bodies(ids.ProcID(p)); len(got) != 1 || got[0] != "both" {
				t.Fatalf("%s member %d got %v", name, p, got)
			}
		}
	})
}

// TestThroughputTradeoff pins the protocols' defining difference on a
// high-latency link: stop-and-wait is limited to one frame per RTT;
// go-back-N pipelines.
func TestThroughputTradeoff(t *testing.T) {
	run := func(mk func() proto.Layer) int {
		cfg := simnet.Config{Nodes: 2, PropDelay: 10 * time.Millisecond}
		c := p2p(t, 1, cfg, mk)
		const n = 50
		for i := 0; i < n; i++ {
			if err := c.Members[0].Stack.Send(1, []byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(200 * time.Millisecond) // ~10 RTTs
		got := len(c.Bodies(1))
		c.Stop()
		return got
	}
	sw := run(func() proto.Layer { return NewStopAndWait(100 * time.Millisecond) })
	gbn := run(func() proto.Layer { return NewGoBackN(16, 100*time.Millisecond) })
	// Stop-and-wait: ~1 frame per 20ms RTT → ~10 frames in 200ms.
	if sw > 15 {
		t.Errorf("stop-and-wait delivered %d in 10 RTTs — should be RTT-bound", sw)
	}
	if gbn < 3*sw {
		t.Errorf("go-back-N (%d) should dominate stop-and-wait (%d) on a fat pipe", gbn, sw)
	}
}

// TestSwitchableP2PChannel is the §1 specialization: a two-member group
// under the token-ring SP switches its link protocol mid-stream.
func TestSwitchableP2PChannel(t *testing.T) {
	protos := []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{NewStopAndWait(20 * time.Millisecond)}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{NewGoBackN(8, 20*time.Millisecond)}
		},
	}
	c, err := swtest.NewSwitched(9, simnet.Config{Nodes: 2, PropDelay: time.Millisecond}, 2,
		switching.Config{Protocols: protos, TokenInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cast := func(i int) {
		m := proto.AppMsg{ID: proto.MakeMsgID(0, uint32(i)), Sender: 0, Body: []byte(fmt.Sprintf("m%02d", i))}
		if err := c.Members[0].Switch.Cast(m.Encode()); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 5; i++ {
		i := i
		c.Sim.At(time.Duration(i+1)*4*time.Millisecond, func() { cast(i) })
	}
	c.Sim.At(25*time.Millisecond, func() { c.Members[1].Switch.RequestSwitch() })
	for i := 5; i < 10; i++ {
		i := i
		c.Sim.At(time.Duration(i+6)*4*time.Millisecond, func() { cast(i) })
	}
	c.Run(10 * time.Second)
	c.Stop()
	for p := 0; p < 2; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(bodies) != 10 {
			t.Fatalf("member %d delivered %d/10 across the link-protocol switch", p, len(bodies))
		}
		for i, b := range bodies {
			if b != fmt.Sprintf("m%02d", i) {
				t.Fatalf("member %d order violated: %v", p, bodies)
			}
		}
		if c.Members[p].Switch.Epoch() != 1 {
			t.Fatalf("member %d did not switch", p)
		}
	}
}

func TestInitValidation(t *testing.T) {
	if err := NewStopAndWait(0).Init(nil, nil, nil); err == nil {
		t.Error("nil wiring accepted")
	}
}

func TestGarbageIgnored(t *testing.T) {
	l := NewGoBackN(4, 0)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	l.Recv(1, nil)
	l.Recv(1, []byte{kindData}) // truncated
	l.Recv(1, []byte{99})
	l.Recv(1, []byte{kindAck, 5}) // ack for nothing
	if len(up.Deliveries) != 0 {
		t.Error("garbage delivered")
	}
}

func TestSendAfterStop(t *testing.T) {
	l := NewStopAndWait(0)
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	l.Stop()
	if err := l.Send(1, []byte("x")); err == nil {
		t.Error("send after stop accepted")
	}
}

func TestWindowDefaults(t *testing.T) {
	if NewGoBackN(0, 0).window != 8 {
		t.Error("window default wrong")
	}
	if NewStopAndWait(0).window != 1 {
		t.Error("stop-and-wait window must be 1")
	}
	if NewSelectiveRepeat(0, 0).window != 8 {
		t.Error("selective-repeat window default wrong")
	}
}

// TestSelectiveRepeatRetransmitsLessThanGBN pins the selective-repeat
// advantage: on a lossy pipelined link it resends only the lost frames,
// while go-back-N resends its whole outstanding window.
func TestSelectiveRepeatRetransmitsLessThanGBN(t *testing.T) {
	run := func(mk func() proto.Layer, stats func() Stats) (int, uint64) {
		cfg := simnet.Config{Nodes: 2, PropDelay: 2 * time.Millisecond, DropProb: 0.2}
		c := p2p(t, 17, cfg, mk)
		const n = 60
		for i := 0; i < n; i++ {
			if err := c.Members[0].Stack.Send(1, []byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(30 * time.Second)
		delivered := len(c.Bodies(1))
		c.Stop()
		return delivered, stats().Retransmits
	}
	var gbn *GoBackN
	gbnDelivered, gbnRetx := run(
		func() proto.Layer {
			l := NewGoBackN(16, 30*time.Millisecond)
			if gbn == nil {
				gbn = l
			}
			return l
		},
		func() Stats { return gbn.Stats() },
	)
	var sr *SelectiveRepeat
	srDelivered, srRetx := run(
		func() proto.Layer {
			l := NewSelectiveRepeat(16, 30*time.Millisecond)
			if sr == nil {
				sr = l
			}
			return l
		},
		func() Stats { return sr.Stats() },
	)
	if gbnDelivered != 60 || srDelivered != 60 {
		t.Fatalf("incomplete delivery: gbn=%d sr=%d", gbnDelivered, srDelivered)
	}
	if srRetx >= gbnRetx {
		t.Errorf("selective repeat retransmitted %d >= go-back-N's %d on a lossy link", srRetx, gbnRetx)
	}
}

func TestSelectiveRepeatGarbage(t *testing.T) {
	l := NewSelectiveRepeat(4, 0)
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	l.Recv(1, nil)
	l.Recv(1, []byte{kindSRData})   // truncated
	l.Recv(1, []byte{kindSRAck, 5}) // ack for nothing
	l.Recv(1, []byte{99})
	if len(up.Deliveries) != 0 {
		t.Error("garbage delivered")
	}
}

func TestSelectiveRepeatStop(t *testing.T) {
	l := NewSelectiveRepeat(4, 0)
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	l.Stop()
	if err := l.Send(1, []byte("x")); err == nil {
		t.Error("send after stop accepted")
	}
	if err := l.Init(nil, nil, nil); err == nil {
		t.Error("nil wiring accepted")
	}
}

func TestInFlightAccounting(t *testing.T) {
	l := NewGoBackN(2, 0)
	down := &ptest.RecordDown{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.InFlight(1); got != 2 {
		t.Errorf("InFlight = %d, want 2 (window)", got)
	}
	if len(down.Sends) != 2 {
		t.Errorf("transmitted %d frames, want 2", len(down.Sends))
	}
	if l.Stats().Queued == 0 {
		t.Error("queued frames not counted")
	}
}

// TestDeterministicEventScheduleUnderLoss replays the same lossy-link
// run several times in one process and requires the exact same event
// count each time. Selective repeat used to retransmit by ranging over
// its unacked map, injecting Go's randomized map iteration order into
// the simulation's event schedule; the run-to-run event count is the
// sensitive detector for that class of bug.
func TestDeterministicEventScheduleUnderLoss(t *testing.T) {
	eachProtocol(t, func(t *testing.T, name string, mk func() proto.Layer) {
		run := func() (uint64, int) {
			cfg := simnet.Config{Nodes: 2, PropDelay: 2 * time.Millisecond, DropProb: 0.25}
			c := p2p(t, 42, cfg, mk)
			for i := 0; i < 40; i++ {
				if err := c.Members[0].Stack.Send(1, []byte(fmt.Sprintf("m%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			c.Run(2 * time.Second)
			events := c.Sim.Executed()
			delivered := len(c.Members[1].Delivered)
			c.Stop()
			return events, delivered
		}
		refEvents, refDelivered := run()
		for i := 0; i < 4; i++ {
			events, delivered := run()
			if events != refEvents || delivered != refDelivered {
				t.Fatalf("%s run %d diverged: events %d vs %d, delivered %d vs %d",
					name, i+1, events, refEvents, delivered, refDelivered)
			}
		}
	})
}
