package arq

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Selective-repeat wire kinds (distinct from the cumulative-ack pair so
// a mixed deployment fails loudly instead of misinterpreting acks).
const (
	kindSRData uint8 = iota + 11 // {seq, payload}
	kindSRAck                    // {seq} — individual, not cumulative
)

// SelectiveRepeat is the third classic ARQ: a sliding window with
// per-frame acknowledgements and retransmission of *only* the missing
// frames. It dominates go-back-N on lossy pipelined links (no
// whole-window resends) at the cost of receiver-side buffering and
// per-frame bookkeeping — the third regime of the E11 trade-off table.
type SelectiveRepeat struct {
	window  int
	timeout time.Duration
	env     proto.Env
	down    proto.Down
	up      proto.Up

	out     map[ids.ProcID]*srOut
	in      map[ids.ProcID]*srIn
	stopped bool
	stats   Stats
}

type srOut struct {
	nextSeq uint64
	base    uint64
	// pending holds queued payloads not yet admitted to the window.
	pending [][]byte
	// unacked holds in-flight frames by sequence number.
	unacked map[uint64][]byte
	timer   proto.Timer
}

type srIn struct {
	next   uint64
	buffer map[uint64][]byte
}

var _ proto.Layer = (*SelectiveRepeat)(nil)

// NewSelectiveRepeat creates a selective-repeat layer. window < 1
// defaults to 8; timeout <= 0 defaults to 50ms.
func NewSelectiveRepeat(window int, timeout time.Duration) *SelectiveRepeat {
	if window < 1 {
		window = 8
	}
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	return &SelectiveRepeat{
		window:  window,
		timeout: timeout,
		out:     make(map[ids.ProcID]*srOut),
		in:      make(map[ids.ProcID]*srIn),
	}
}

// Init implements proto.Layer.
func (l *SelectiveRepeat) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("selectiverepeat: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *SelectiveRepeat) Stop() {
	l.stopped = true
	for _, o := range l.out {
		if o.timer != nil {
			o.timer.Stop()
		}
	}
}

// Stats returns a copy of the counters.
func (l *SelectiveRepeat) Stats() Stats { return l.stats }

// Cast implements proto.Layer (see common.Cast).
func (l *SelectiveRepeat) Cast(payload []byte) error {
	for _, p := range l.env.Members() {
		if p == l.env.Self() {
			continue
		}
		if err := l.Send(p, payload); err != nil {
			return err
		}
	}
	l.up.Deliver(l.env.Self(), payload)
	return nil
}

// Send implements proto.Layer: reliable FIFO unicast.
func (l *SelectiveRepeat) Send(dst ids.ProcID, payload []byte) error {
	if l.stopped {
		return fmt.Errorf("selectiverepeat: stopped")
	}
	o := l.out[dst]
	if o == nil {
		o = &srOut{unacked: make(map[uint64][]byte)}
		l.out[dst] = o
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	o.pending = append(o.pending, buf)
	l.pump(dst, o)
	return nil
}

func (l *SelectiveRepeat) pump(dst ids.ProcID, o *srOut) {
	for len(o.pending) > 0 && int(o.nextSeq-o.base) < l.window {
		payload := o.pending[0]
		o.pending = o.pending[1:]
		seq := o.nextSeq
		o.nextSeq++
		o.unacked[seq] = payload
		l.stats.Sent++
		l.transmit(dst, seq, payload)
	}
	if len(o.pending) > 0 {
		l.stats.Queued++
	}
	l.armTimer(dst, o)
}

func (l *SelectiveRepeat) transmit(dst ids.ProcID, seq uint64, payload []byte) {
	e := wire.NewEncoder(12)
	e.U8(kindSRData).Uvarint(seq)
	_ = l.down.Send(dst, e.Prepend(payload))
}

func (l *SelectiveRepeat) armTimer(dst ids.ProcID, o *srOut) {
	if (o.timer != nil && o.timer.Active()) || len(o.unacked) == 0 {
		return
	}
	o.timer = l.env.After(l.timeout, func() {
		if l.stopped {
			return
		}
		// Selective retransmission: only the frames still unacked,
		// scanned in sequence order — ranging over the map directly
		// would resend in Go's randomized iteration order and make the
		// simulation's event schedule nondeterministic run-to-run.
		for seq := o.base; seq < o.nextSeq; seq++ {
			payload, still := o.unacked[seq]
			if !still {
				continue
			}
			l.stats.Retransmits++
			l.transmit(dst, seq, payload)
		}
		o.timer = nil
		l.armTimer(dst, o)
	})
}

// Recv implements proto.Layer.
func (l *SelectiveRepeat) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindSRData:
		seq := d.Uvarint()
		if d.Err() != nil {
			return
		}
		in := l.in[src]
		if in == nil {
			in = &srIn{buffer: make(map[uint64][]byte)}
			l.in[src] = in
		}
		// Ack every arrival, duplicate or not (acks can be lost).
		e := wire.NewEncoder(12)
		e.U8(kindSRAck).Uvarint(seq)
		l.stats.AcksSent++
		_ = l.down.Send(src, e.Bytes())
		if seq < in.next {
			l.stats.DupsDropped++
			return
		}
		if _, dup := in.buffer[seq]; dup {
			l.stats.DupsDropped++
			return
		}
		payload := make([]byte, len(d.Remaining()))
		copy(payload, d.Remaining())
		in.buffer[seq] = payload
		for {
			p, ok := in.buffer[in.next]
			if !ok {
				break
			}
			delete(in.buffer, in.next)
			in.next++
			l.up.Deliver(src, p)
		}
	case kindSRAck:
		seq := d.Uvarint()
		if d.Err() != nil {
			return
		}
		o := l.out[src]
		if o == nil {
			return
		}
		delete(o.unacked, seq)
		// Slide the base past fully acked prefixes.
		for o.base < o.nextSeq {
			if _, still := o.unacked[o.base]; still {
				break
			}
			o.base++
		}
		// Refresh the shared timer on progress so frames newer than the
		// acked one get a full timeout rather than the stale one's
		// remainder (spurious retransmissions otherwise).
		if o.timer != nil {
			o.timer.Stop()
			o.timer = nil
		}
		l.pump(src, o)
	}
}
