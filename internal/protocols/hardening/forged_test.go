package hardening

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/arq"
	"repro/internal/protocols/causal"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/protocols/vsync"
	"repro/internal/simnet"
	"repro/internal/wire"
)

var hardeningSessionKey = []byte("hardening suite session key")

// forgedInner builds a syntactically valid switching frame — mux
// channel, FIFO cast header, epoch tag, well-formed application message
// — with the FORGED marker in the body. Everything about it parses;
// only a correct MAC could make it trusted.
func forgedInner(epoch uint64, seq uint64, tag int) []byte {
	app := proto.AppMsg{ID: proto.MakeMsgID(2, uint32(seq)), Sender: 2,
		Body: []byte(fmt.Sprintf("FORGED %d", tag))}
	e := wire.NewEncoder(16)
	e.Channel(ids.ProtocolChannel(int(epoch % 2)))
	e.U8(1)
	e.Uvarint(seq)
	e.Uvarint(epoch)
	return e.Prepend(app.Encode())
}

// forgedCorpus is the structured sibling of inputs(): count frames an
// adversary without the session key could actually put on the wire —
// auth envelopes sealed under guessed keys, legacy CRC envelopes around
// valid-looking frames, auth headers spliced onto random bytes — rather
// than uniform noise.
func forgedCorpus(seed int64, count int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, 0, count)
	for i := 0; len(out) < count; i++ {
		epoch := uint64(rng.Intn(4))
		inner := forgedInner(epoch, uint64(rng.Intn(1<<16)), i)
		switch i % 4 {
		case 0: // wrong session key, valid structure
			key := make([]byte, 16)
			rng.Read(key)
			out = append(out, wire.SealAuth(wire.DeriveEpochKey(key, epoch), epoch, inner))
		case 1: // no key at all: the legacy CRC envelope
			out = append(out, wire.Seal(inner))
		case 2: // auth header spliced onto noise
			b := make([]byte, 1+rng.Intn(48))
			rng.Read(b)
			b[0] = 0xA7
			out = append(out, b)
		default: // bare inner frame, no envelope
			out = append(out, inner)
		}
	}
	return out
}

// TestLayerIngressSurvivesForgedFrames feeds the structured forged
// corpus — delivered twice each, modeling an adversary who also replays
// its own transmissions — into every protocol layer's Recv. No layer
// may panic, and each must account for rejected input.
func TestLayerIngressSurvivesForgedFrames(t *testing.T) {
	const group = 4
	layers := []struct {
		name string
		make func() proto.Layer
	}{
		{"fifo", func() proto.Layer { return fifo.New(fifo.Config{}) }},
		{"seqorder", func() proto.Layer { return seqorder.New(0) }},
		{"tokenorder", func() proto.Layer { return tokenorder.New(tokenorder.Config{HoldDelay: time.Millisecond}) }},
		{"vsync", func() proto.Layer { return vsync.New() }},
		{"arq/stopwait", func() proto.Layer { return arq.NewStopAndWait(0) }},
		{"arq/gobackn", func() proto.Layer { return arq.NewGoBackN(0, 0) }},
		{"causal", func() proto.Layer { return causal.New() }},
	}
	corpus := forgedCorpus(99, 500)
	for _, tc := range layers {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.make()
			env := ptest.NewFakeEnv(0, group)
			down, up := &ptest.RecordDown{}, &ptest.RecordUp{}
			if err := l.Init(env, down, up); err != nil {
				t.Fatal(err)
			}
			for i, pkt := range corpus {
				src := ids.ProcID(1 + i%(group-1))
				l.Recv(src, pkt)
				l.Recv(src, pkt) // the replay
			}
			mc, ok := l.(malformedCounter)
			if !ok {
				t.Fatalf("%T does not expose MalformedDropped()", l)
			}
			if mc.MalformedDropped() == 0 {
				t.Errorf("%s: %d forged packets (each twice), none counted malformed", tc.name, len(corpus))
			}
			l.Stop()
		})
	}
}

// TestSwitchIngressSurvivesForgedAndReplayed replays both corpora
// against the authenticated switching stack mid-run: 500 forged frames
// (sealed without the session key) plus 500 cross-epoch replays
// (genuine epoch-0 seals fired after the group moved to epoch 1 and the
// grace window closed). Every frame must be rejected at the auth
// boundary and counted, the flood must cross the quarantine threshold,
// no FORGED body may reach any application, and the ring must keep
// rotating.
func TestSwitchIngressSurvivesForgedAndReplayed(t *testing.T) {
	const grace = 5 * time.Millisecond
	cfg := switching.Config{
		Protocols: []switching.ProtocolFactory{
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
			},
			func(proto.Env) []proto.Layer {
				return []proto.Layer{seqorder.New(1), fifo.New(fifo.Config{})}
			},
		},
		TokenInterval: 2 * time.Millisecond,
		Defense: &switching.DefenseConfig{
			QuarantineThreshold: 100,
			Auth:                &switching.AuthConfig{SessionKey: hardeningSessionKey, Grace: grace},
		},
	}
	c, err := swtest.NewSwitched(1, simnet.Config{Nodes: 4, PropDelay: 100 * time.Microsecond}, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	forged := forgedCorpus(100, 500)
	replayed := make([][]byte, 500)
	for i := range replayed {
		// Genuine epoch-0 frames an adversary could have captured: the
		// session key is group state, so recorded bytes are exactly this.
		replayed[i] = wire.SealAuth(wire.DeriveEpochKey(hardeningSessionKey, 0), 0,
			forgedInner(0, uint64(50000+i), i))
	}
	c.Sim.At(10*time.Millisecond, func() { c.Members[1].Switch.RequestSwitch() })
	// Pour both corpora into member 0 well after the switch completed
	// and the epoch-0 grace window closed.
	c.Sim.At(100*time.Millisecond, func() {
		if got := c.Members[0].Switch.Epoch(); got != 1 {
			t.Errorf("member 0 at epoch %d before injection, want 1", got)
		}
		for _, pkt := range forged {
			c.Members[0].Switch.Recv(2, pkt)
		}
		for _, pkt := range replayed {
			c.Members[0].Switch.Recv(2, pkt)
		}
	})
	c.Run(300 * time.Millisecond)
	c.Stop()

	st := c.Members[0].Switch.Stats()
	total := uint64(len(forged) + len(replayed))
	if st.AuthFailed < total {
		t.Errorf("auth rejected %d of %d adversarial packets", st.AuthFailed, total)
	}
	if got := c.Members[0].Switch.AuthFailedFrom(2); got < total {
		t.Errorf("AuthFailedFrom(2) = %d, want >= %d", got, total)
	}
	if st.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1 (threshold 100, corpus %d)", st.Quarantines, total)
	}
	if st.TokenPasses == 0 {
		t.Error("token never rotated — the flood wedged the stack")
	}
	for p := 0; p < 4; p++ {
		bodies, err := c.AppBodies(ids.ProcID(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bodies {
			if strings.Contains(b, "FORGED") {
				t.Errorf("member %d delivered forged body %q", p, b)
			}
		}
	}
}
