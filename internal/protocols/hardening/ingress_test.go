// Package hardening holds the cross-layer adversarial-ingress
// regression suite: every protocol layer and the switching stack must
// survive arbitrary bytes on their Recv paths — no panics, no state
// corruption — counting what they reject instead. This is the
// non-fuzzing companion to internal/wire's fuzz targets: a fixed seeded
// corpus of 1000 random byte strings replayed on every layer, so the
// guarantee is pinned in the ordinary test suite (and under -race),
// not only when a fuzzer happens to run.
package hardening

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/switching/swtest"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/arq"
	"repro/internal/protocols/causal"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
	"repro/internal/protocols/vsync"
	"repro/internal/simnet"
)

// inputs is the shared adversarial corpus: count random byte strings
// (lengths 0..63) from a fixed seed, so a failure is replayable.
func inputs(seed int64, count int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, count)
	for i := range out {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		out[i] = b
	}
	return out
}

// malformedCounter is the defensive-ingress accessor every hardened
// layer exposes.
type malformedCounter interface {
	MalformedDropped() uint64
}

// TestLayerIngressSurvivesRandomBytes feeds 1000 seeded random byte
// strings into every protocol layer's Recv, from rotating sources. The
// layer must not panic, and must account for rejected input in its
// MalformedDropped counter (random bytes occasionally parse as valid
// small frames, so the counter need not equal the corpus size — it
// must only be nonzero, proving the defensive path engaged).
func TestLayerIngressSurvivesRandomBytes(t *testing.T) {
	const group = 4
	layers := []struct {
		name string
		make func() proto.Layer
	}{
		{"fifo", func() proto.Layer { return fifo.New(fifo.Config{}) }},
		{"seqorder", func() proto.Layer { return seqorder.New(0) }},
		{"tokenorder", func() proto.Layer { return tokenorder.New(tokenorder.Config{HoldDelay: time.Millisecond}) }},
		{"vsync", func() proto.Layer { return vsync.New() }},
		{"arq/stopwait", func() proto.Layer { return arq.NewStopAndWait(0) }},
		{"arq/gobackn", func() proto.Layer { return arq.NewGoBackN(0, 0) }},
		{"causal", func() proto.Layer { return causal.New() }},
	}
	corpus := inputs(42, 1000)
	for _, tc := range layers {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.make()
			env := ptest.NewFakeEnv(0, group)
			down, up := &ptest.RecordDown{}, &ptest.RecordUp{}
			if err := l.Init(env, down, up); err != nil {
				t.Fatal(err)
			}
			for i, pkt := range corpus {
				l.Recv(ids.ProcID(1+i%(group-1)), pkt)
			}
			mc, ok := l.(malformedCounter)
			if !ok {
				t.Fatalf("%T does not expose MalformedDropped()", l)
			}
			if mc.MalformedDropped() == 0 {
				t.Errorf("%s: 1000 random packets, none counted malformed", tc.name)
			}
			l.Stop()
		})
	}
}

// TestSwitchIngressSurvivesRandomBytes replays the same corpus against
// the full switching stack, with and without the defensive envelope. In
// both modes the cluster must not panic and must keep operating (the
// token keeps rotating after the garbage). With Defense enabled, every
// random packet fails the integrity envelope, so the malformed counter
// must account for the entire corpus and the flood must cross the
// quarantine threshold.
func TestSwitchIngressSurvivesRandomBytes(t *testing.T) {
	corpus := inputs(7, 1000)
	for _, tc := range []struct {
		name    string
		defense *switching.DefenseConfig
	}{
		{"legacy", nil},
		{"defense", &switching.DefenseConfig{QuarantineThreshold: 100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := switching.Config{
				Protocols: []switching.ProtocolFactory{
					func(proto.Env) []proto.Layer {
						return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
					},
					func(proto.Env) []proto.Layer {
						return []proto.Layer{seqorder.New(1), fifo.New(fifo.Config{})}
					},
				},
				TokenInterval: 2 * time.Millisecond,
				Defense:       tc.defense,
			}
			c, err := swtest.NewSwitched(1, simnet.Config{Nodes: 4, PropDelay: 100 * time.Microsecond}, 4, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up, then pour the corpus into member 0's ingress as if
			// peer 2 sent it, mid-run so timers and the token are live.
			c.Sim.At(20*time.Millisecond, func() {
				for _, pkt := range corpus {
					c.Members[0].Switch.Recv(2, pkt)
				}
			})
			c.Run(100 * time.Millisecond)
			c.Stop()

			st := c.Members[0].Switch.Stats()
			if tc.defense != nil {
				if st.MalformedDropped < uint64(len(corpus)) {
					t.Errorf("defense dropped %d of %d adversarial packets", st.MalformedDropped, len(corpus))
				}
				if st.Quarantines != 1 {
					t.Errorf("quarantines = %d, want 1 (threshold %d, corpus %d)",
						st.Quarantines, tc.defense.QuarantineThreshold, len(corpus))
				}
				if got := c.Members[0].Switch.MalformedFrom(2); got < uint64(len(corpus)) {
					t.Errorf("MalformedFrom(2) = %d, want >= %d", got, len(corpus))
				}
			}
			// The stack survived: the ring is still rotating.
			if st.TokenPasses == 0 {
				t.Error("token never rotated — the garbage wedged the stack")
			}
		})
	}
}
