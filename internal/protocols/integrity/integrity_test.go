package integrity

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

var groupKey = []byte("group-key-0123456789abcdef")

func cluster(t *testing.T, keyFor func(p ids.ProcID) []byte) ([]*Layer, *ptest.Cluster) {
	t.Helper()
	var layers []*Layer
	c, err := ptest.New(1, simnet.Config{Nodes: 3, PropDelay: time.Millisecond}, 3,
		func(env proto.Env) []proto.Layer {
			l := New(keyFor(env.Self()))
			layers = append(layers, l)
			return []proto.Layer{l}
		})
	if err != nil {
		t.Fatal(err)
	}
	return layers, c
}

func TestAuthenticCastDelivers(t *testing.T) {
	_, c := cluster(t, func(ids.ProcID) []byte { return groupKey })
	if err := c.Cast(0, []byte("trusted")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	for p := 0; p < 3; p++ {
		if got := c.Bodies(ids.ProcID(p)); len(got) != 1 || got[0] != "trusted" {
			t.Fatalf("member %d got %v", p, got)
		}
	}
}

func TestAuthenticSendDelivers(t *testing.T) {
	_, c := cluster(t, func(ids.ProcID) []byte { return groupKey })
	if err := c.Members[0].Stack.Send(2, []byte("p2p")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if got := c.Bodies(2); len(got) != 1 || got[0] != "p2p" {
		t.Fatalf("got %v", got)
	}
}

func TestForgedSenderRejected(t *testing.T) {
	// Member 2 holds the wrong key: everything it sends is dropped by
	// trusted members — "messages are sent by trusted processes".
	layers, c := cluster(t, func(p ids.ProcID) []byte {
		if p == 2 {
			return []byte("wrong-key-wrong-key-wrong")
		}
		return groupKey
	})
	if err := c.Cast(2, []byte("forged")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if got := c.Bodies(0); len(got) != 0 {
		t.Fatalf("trusted member delivered forged message: %v", got)
	}
	if got := c.Bodies(1); len(got) != 0 {
		t.Fatalf("trusted member delivered forged message: %v", got)
	}
	if layers[0].Rejected() == 0 && layers[1].Rejected() == 0 {
		t.Error("no rejections recorded")
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	layers, c := cluster(t, func(ids.ProcID) []byte { return groupKey })
	// Build a valid sealed packet, then flip a payload byte and inject.
	sealed := layers[0].seal([]byte("original"))
	sealed[len(sealed)-1] ^= 0xff
	if err := c.Net.Inject(0, 1, sealed); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if got := c.Bodies(1); len(got) != 0 {
		t.Fatalf("tampered payload delivered: %v", got)
	}
	if layers[1].Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", layers[1].Rejected())
	}
}

func TestGarbageRejected(t *testing.T) {
	l := New(groupKey)
	var delivered int
	up := proto.UpFunc(func(ids.ProcID, []byte) { delivered++ })
	if err := l.Init(ptest.NewFakeEnv(0, 1), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	l.Recv(0, nil)
	l.Recv(0, []byte{1, 2, 3})
	if delivered != 0 {
		t.Error("garbage delivered")
	}
	if l.Rejected() != 2 {
		t.Errorf("Rejected = %d, want 2", l.Rejected())
	}
}

func TestInitValidation(t *testing.T) {
	if err := New(groupKey).Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
	if err := New(nil).Init(ptest.NewFakeEnv(0, 1), &ptest.RecordDown{}, &ptest.RecordUp{}); err == nil {
		t.Error("Init accepted empty key")
	}
}

func TestKeyIsCopied(t *testing.T) {
	key := []byte("mutable-key-mutable-key-!")
	l := New(key)
	key[0] = 'X'
	l2 := New([]byte("mutable-key-mutable-key-!"))
	a := l.seal([]byte("m"))
	b := l2.seal([]byte("m"))
	if string(a) != string(b) {
		t.Error("layer did not copy the key at construction")
	}
}
