// Package integrity implements the Integrity property of Table 1 of the
// paper — "messages cannot be forged; they are sent by trusted
// processes" — as an HMAC-SHA256 authentication layer. Trusted processes
// share a group key; a payload whose MAC does not verify is dropped
// before it can reach the layers above.
//
// Integrity satisfies all six meta-properties (§5–6), so it is preserved
// by the switching protocol; the integration tests in the switching
// package exercise exactly that.
package integrity

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// macSize is the truncated MAC length carried on the wire.
const macSize = 16

// Layer authenticates every payload through it.
type Layer struct {
	key  []byte
	env  proto.Env
	down proto.Down
	up   proto.Up
	// Epoch-keyed mode (NewEpoch): the MAC key is derived per switching
	// epoch from key via wire.DeriveEpochKey, rolled by SetEpoch.
	epochKeyed bool
	epoch      uint64
	epochKeys  map[uint64][]byte
	// rejected counts dropped forgeries (metrics/test hook).
	rejected uint64
	// staleRejected counts payloads that carried a structurally valid
	// MAC but verified under no key in the current acceptance window —
	// in epoch-keyed mode this is where cross-epoch replays land.
	staleRejected uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates an integrity layer keyed with the group key. Processes
// holding a different key (or none) are the model's "untrusted"
// processes: nothing they send verifies at trusted receivers.
func New(key []byte) *Layer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Layer{key: k}
}

// NewEpoch creates an integrity layer whose MAC key is derived per
// switching epoch from the session key (wire.DeriveEpochKey) and rolled
// by the switching layer through proto.EpochAware. Receivers accept the
// current epoch and its two neighbours (frames legitimately in flight
// across a key roll); anything older fails verification — so a payload
// recorded under one epoch cannot be replayed after the group has moved
// on, even when the same protocol becomes active again at a later
// epoch. This is the "replay window survives the switch" half of the
// mpENC-style session; compare noreplay.NewShared for the exact-dup
// half.
func NewEpoch(sessionKey []byte) *Layer {
	l := New(sessionKey)
	l.epochKeyed = true
	l.epochKeys = make(map[uint64][]byte)
	return l
}

// SetEpoch implements proto.EpochAware: roll the MAC key to the given
// (monotonically non-decreasing) switching epoch. A no-op for layers
// built with New.
func (l *Layer) SetEpoch(epoch uint64) {
	if !l.epochKeyed || epoch <= l.epoch {
		return
	}
	l.epoch = epoch
	for e := range l.epochKeys {
		if e+1 < epoch {
			delete(l.epochKeys, e)
		}
	}
}

var _ proto.EpochAware = (*Layer)(nil)

// macKey returns the MAC key for an epoch (the static group key when
// not epoch-keyed).
func (l *Layer) macKey(epoch uint64) []byte {
	if !l.epochKeyed {
		return l.key
	}
	if k, ok := l.epochKeys[epoch]; ok {
		return k
	}
	k := wire.DeriveEpochKey(l.key, epoch)
	l.epochKeys[epoch] = k
	return k
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("integrity: nil wiring")
	}
	if len(l.key) == 0 {
		return fmt.Errorf("integrity: empty key")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Rejected returns the number of payloads dropped for MAC failure
// (including stale-epoch rejections).
func (l *Layer) Rejected() uint64 { return l.rejected }

// StaleRejected returns how many of the rejected payloads carried a
// well-formed MAC that verified under no key in the acceptance window —
// cross-epoch replays, in epoch-keyed mode.
func (l *Layer) StaleRejected() uint64 { return l.staleRejected }

func macSum(key, payload []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(payload)
	return mac.Sum(nil)[:macSize]
}

func (l *Layer) seal(payload []byte) []byte {
	sum := macSum(l.macKey(l.epoch), payload)
	e := wire.NewEncoder(macSize + 2)
	e.BytesField(sum)
	return e.Prepend(payload)
}

// Cast implements proto.Layer.
func (l *Layer) Cast(payload []byte) error {
	return l.down.Cast(l.seal(payload))
}

// Send implements proto.Layer.
func (l *Layer) Send(dst ids.ProcID, payload []byte) error {
	return l.down.Send(dst, l.seal(payload))
}

// Recv implements proto.Layer: verify and strip the MAC, dropping
// forgeries. In epoch-keyed mode the acceptance window is the current
// epoch and its immediate neighbours — a frame sealed just before the
// sender rolled (epoch-1) or by a sender that rolled first (epoch+1)
// still verifies; anything further is rejected as stale.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	sum := d.BytesField()
	if d.Err() != nil || len(sum) != macSize {
		l.rejected++
		return
	}
	payload := d.Remaining()
	if !l.epochKeyed {
		if !hmac.Equal(sum, macSum(l.key, payload)) {
			l.rejected++
			return
		}
		l.up.Deliver(src, payload)
		return
	}
	candidates := [3]uint64{l.epoch, l.epoch + 1, l.epoch - 1}
	n := 3
	if l.epoch == 0 {
		n = 2
	}
	for _, e := range candidates[:n] {
		if hmac.Equal(sum, macSum(l.macKey(e), payload)) {
			l.up.Deliver(src, payload)
			return
		}
	}
	l.rejected++
	l.staleRejected++
}
