// Package integrity implements the Integrity property of Table 1 of the
// paper — "messages cannot be forged; they are sent by trusted
// processes" — as an HMAC-SHA256 authentication layer. Trusted processes
// share a group key; a payload whose MAC does not verify is dropped
// before it can reach the layers above.
//
// Integrity satisfies all six meta-properties (§5–6), so it is preserved
// by the switching protocol; the integration tests in the switching
// package exercise exactly that.
package integrity

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// macSize is the truncated MAC length carried on the wire.
const macSize = 16

// Layer authenticates every payload through it.
type Layer struct {
	key  []byte
	env  proto.Env
	down proto.Down
	up   proto.Up
	// rejected counts dropped forgeries (metrics/test hook).
	rejected uint64
}

var _ proto.Layer = (*Layer)(nil)

// New creates an integrity layer keyed with the group key. Processes
// holding a different key (or none) are the model's "untrusted"
// processes: nothing they send verifies at trusted receivers.
func New(key []byte) *Layer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Layer{key: k}
}

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("integrity: nil wiring")
	}
	if len(l.key) == 0 {
		return fmt.Errorf("integrity: empty key")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Rejected returns the number of payloads dropped for MAC failure.
func (l *Layer) Rejected() uint64 { return l.rejected }

func (l *Layer) seal(payload []byte) []byte {
	mac := hmac.New(sha256.New, l.key)
	mac.Write(payload)
	sum := mac.Sum(nil)[:macSize]
	e := wire.NewEncoder(macSize + 2)
	e.BytesField(sum)
	return e.Prepend(payload)
}

// Cast implements proto.Layer.
func (l *Layer) Cast(payload []byte) error {
	return l.down.Cast(l.seal(payload))
}

// Send implements proto.Layer.
func (l *Layer) Send(dst ids.ProcID, payload []byte) error {
	return l.down.Send(dst, l.seal(payload))
}

// Recv implements proto.Layer: verify and strip the MAC, dropping
// forgeries.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	sum := d.BytesField()
	if d.Err() != nil || len(sum) != macSize {
		l.rejected++
		return
	}
	payload := d.Remaining()
	mac := hmac.New(sha256.New, l.key)
	mac.Write(payload)
	want := mac.Sum(nil)[:macSize]
	if !hmac.Equal(sum, want) {
		l.rejected++
		return
	}
	l.up.Deliver(src, payload)
}
