package integrity

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/protocols/ptest"
)

var sessionKey = []byte("epoch-test session key")

func newEpochUnit(t *testing.T) (*Layer, *ptest.RecordDown, *ptest.RecordUp) {
	t.Helper()
	l := NewEpoch(sessionKey)
	down := &ptest.RecordDown{}
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, up); err != nil {
		t.Fatal(err)
	}
	return l, down, up
}

// sealAt returns the wire bytes the layer would emit for payload at the
// given epoch — the test's stand-in for a frame captured off the wire.
func sealAt(t *testing.T, epoch uint64, payload string) []byte {
	t.Helper()
	l := NewEpoch(sessionKey)
	down := &ptest.RecordDown{}
	if err := l.Init(ptest.NewFakeEnv(1, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	l.SetEpoch(epoch)
	if err := l.Cast([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	return down.Casts[0]
}

func TestEpochRoundTripSameEpoch(t *testing.T) {
	l, _, up := newEpochUnit(t)
	l.Recv(1, sealAt(t, 0, "hello"))
	if len(up.Deliveries) != 1 || string(up.Deliveries[0].Payload) != "hello" {
		t.Fatalf("deliveries = %v", up.Deliveries)
	}
	if l.Rejected() != 0 {
		t.Errorf("Rejected = %d, want 0", l.Rejected())
	}
}

// TestEpochWindowAcceptsNeighbours: frames sealed one epoch behind or
// ahead of the receiver still verify — they are legitimately in flight
// around a key roll.
func TestEpochWindowAcceptsNeighbours(t *testing.T) {
	l, _, up := newEpochUnit(t)
	l.SetEpoch(5)
	l.Recv(1, sealAt(t, 4, "behind"))
	l.Recv(1, sealAt(t, 5, "level"))
	l.Recv(1, sealAt(t, 6, "ahead"))
	if got := len(up.Deliveries); got != 3 {
		t.Fatalf("delivered %d of the ±1 window, want 3; rejected=%d", got, l.Rejected())
	}
}

// TestEpochCrossEpochReplayRejected is the §6.2 fix at the layer level:
// a frame recorded in a retired epoch no longer verifies, even though
// every byte of it is genuine.
func TestEpochCrossEpochReplayRejected(t *testing.T) {
	l, _, up := newEpochUnit(t)
	captured := sealAt(t, 0, "recorded in epoch 0")
	l.SetEpoch(2)
	l.Recv(1, captured)
	if len(up.Deliveries) != 0 {
		t.Fatal("cross-epoch replay delivered")
	}
	if l.Rejected() != 1 || l.StaleRejected() != 1 {
		t.Errorf("Rejected=%d StaleRejected=%d, want 1/1", l.Rejected(), l.StaleRejected())
	}
}

// TestEpochSetEpochMonotonic: SetEpoch never moves backwards, so a
// delayed or replayed control message cannot reopen a retired epoch.
func TestEpochSetEpochMonotonic(t *testing.T) {
	l, _, up := newEpochUnit(t)
	captured := sealAt(t, 0, "old")
	l.SetEpoch(3)
	l.SetEpoch(1) // ignored
	l.SetEpoch(0) // ignored
	l.Recv(1, captured)
	if len(up.Deliveries) != 0 {
		t.Fatal("backwards SetEpoch reopened a retired epoch")
	}
	l.Recv(1, sealAt(t, 3, "current"))
	if len(up.Deliveries) != 1 {
		t.Fatal("current-epoch frame rejected after monotonic guard")
	}
}

// TestEpochKeyCachePruned: retired epoch keys are dropped from the memo
// as the epoch advances, so the cache stays bounded over a long run.
func TestEpochKeyCachePruned(t *testing.T) {
	l, _, _ := newEpochUnit(t)
	for e := uint64(1); e <= 100; e++ {
		l.SetEpoch(e)
		if err := l.Cast([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.epochKeys); n > 3 {
		t.Errorf("epoch key cache holds %d entries after 100 rolls, want <= 3", n)
	}
}

// TestEpochWrongSessionKeyRejected: epoch-keyed mode still rejects
// plain forgeries, same as the static-key layer.
func TestEpochWrongSessionKeyRejected(t *testing.T) {
	l, _, up := newEpochUnit(t)
	forger := NewEpoch([]byte("some other session"))
	down := &ptest.RecordDown{}
	if err := forger.Init(ptest.NewFakeEnv(1, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	if err := forger.Cast([]byte("forged")); err != nil {
		t.Fatal(err)
	}
	l.Recv(1, down.Casts[0])
	if len(up.Deliveries) != 0 {
		t.Fatal("wrong-session frame delivered")
	}
	if l.Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", l.Rejected())
	}
}

// TestEpochStaticLayerUnaffected: New()'s behaviour is untouched by the
// epoch machinery — SetEpoch on it is a no-op and the static key keeps
// verifying.
func TestEpochStaticLayerUnaffected(t *testing.T) {
	l := New(sessionKey)
	down := &ptest.RecordDown{}
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), down, up); err != nil {
		t.Fatal(err)
	}
	if err := l.Cast([]byte("static")); err != nil {
		t.Fatal(err)
	}
	l.SetEpoch(7) // no-op for static layers
	l.Recv(1, down.Casts[0])
	if len(up.Deliveries) != 1 {
		t.Fatal("static layer broken by SetEpoch")
	}
	var _ proto.EpochAware = l // both modes satisfy the interface
}
