package fd_test

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/protocols/fd"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
)

// harness builds n detectors over a simulated network.
type harness struct {
	sim  *des.Sim
	net  *simnet.Network
	dets []*fd.Detector
	// suspectedBy[watcher] accumulates suspicion callbacks.
	suspectedBy map[ids.ProcID][]ids.ProcID
	restoredBy  map[ids.ProcID][]ids.ProcID
}

func build(t *testing.T, n int, cfg fd.Config) *harness {
	t.Helper()
	sim := des.New(1)
	net, err := simnet.New(sim, simnet.Config{Nodes: n, PropDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	group, err := simenv.NewGroup(sim, net, n)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		sim:         sim,
		net:         net,
		suspectedBy: make(map[ids.ProcID][]ids.ProcID),
		restoredBy:  make(map[ids.ProcID][]ids.ProcID),
	}
	for _, node := range group.Nodes() {
		self := node.Self()
		c := cfg
		c.OnSuspect = func(p ids.ProcID) { h.suspectedBy[self] = append(h.suspectedBy[self], p) }
		c.OnRestore = func(p ids.ProcID) { h.restoredBy[self] = append(h.restoredBy[self], p) }
		det := fd.New(c)
		if err := det.Init(node, node.Transport()); err != nil {
			t.Fatal(err)
		}
		if err := node.BindStack(det.Recv); err != nil {
			t.Fatal(err)
		}
		h.dets = append(h.dets, det)
	}
	return h
}

func (h *harness) stop() {
	for _, d := range h.dets {
		d.Stop()
	}
}

func TestNoFalseSuspicionsWhenHealthy(t *testing.T) {
	h := build(t, 4, fd.Config{Interval: 10 * time.Millisecond})
	h.sim.RunUntil(2 * time.Second)
	h.stop()
	for w, s := range h.suspectedBy {
		if len(s) != 0 {
			t.Errorf("healthy group: %v suspected %v", w, s)
		}
	}
	for p, d := range h.dets {
		if got := d.Live(); len(got) != 4 {
			t.Errorf("detector %d Live() = %v", p, got)
		}
	}
}

func TestCrashedMemberSuspectedByAll(t *testing.T) {
	h := build(t, 4, fd.Config{Interval: 10 * time.Millisecond})
	h.sim.RunUntil(200 * time.Millisecond)
	h.net.Crash(2)
	h.sim.RunUntil(2 * time.Second)
	h.stop()
	for w := 0; w < 4; w++ {
		if w == 2 {
			continue // the dead don't testify
		}
		if !h.dets[w].Suspected(2) {
			t.Errorf("member %d never suspected the crashed p2", w)
		}
		if got := h.dets[w].Suspects(); len(got) != 1 || got[0] != 2 {
			t.Errorf("member %d Suspects() = %v", w, got)
		}
		if got := h.dets[w].Live(); len(got) != 3 {
			t.Errorf("member %d Live() = %v", w, got)
		}
	}
}

func TestSuspicionWithdrawnOnRecovery(t *testing.T) {
	// A partition (not a crash) heals: suspicion must be withdrawn.
	h := build(t, 3, fd.Config{Interval: 10 * time.Millisecond})
	h.sim.RunUntil(100 * time.Millisecond)
	h.net.Block(1, 0) // p0 stops hearing p1
	h.sim.RunUntil(500 * time.Millisecond)
	if !h.dets[0].Suspected(1) {
		t.Fatal("p0 never suspected the partitioned p1")
	}
	h.net.Unblock(1, 0)
	h.sim.RunUntil(time.Second)
	h.stop()
	if h.dets[0].Suspected(1) {
		t.Error("suspicion not withdrawn after the partition healed")
	}
	if len(h.restoredBy[0]) == 0 {
		t.Error("OnRestore never fired")
	}
}

func TestSuspectFiresOncePerTransition(t *testing.T) {
	h := build(t, 2, fd.Config{Interval: 10 * time.Millisecond})
	h.sim.RunUntil(100 * time.Millisecond)
	h.net.Crash(1)
	h.sim.RunUntil(3 * time.Second)
	h.stop()
	if got := len(h.suspectedBy[0]); got != 1 {
		t.Errorf("OnSuspect fired %d times, want 1", got)
	}
}

func TestInitValidation(t *testing.T) {
	if err := fd.New(fd.Config{}).Init(nil, nil); err == nil {
		t.Error("nil wiring accepted")
	}
}

func TestStopSilences(t *testing.T) {
	h := build(t, 2, fd.Config{Interval: 10 * time.Millisecond})
	h.stop()
	// After Stop the simulator must drain (timers cancelled).
	if err := h.sim.Run(10000); err != nil {
		t.Errorf("timers kept rearming after Stop: %v", err)
	}
}
