// Package fd implements a heartbeat failure detector — the substrate
// that lets the view-change switching mechanism of §8 evict crashed
// members at run time. (The paper's token-ring SP assumes crash-free
// members: a single crash-stop failure silently wedges its token ring,
// which the switching tests demonstrate; the view switch with this
// detector reconfigures around the crash instead.)
//
// Each member multicasts a heartbeat every Interval on the detector's
// private channel; a member not heard from for Timeout becomes
// *suspected*. The detector is eventually perfect in this crash-stop
// model without network partitions: every crashed member is eventually
// suspected, and a live member is only mis-suspected while messages are
// delayed beyond Timeout (suspicion is withdrawn when a heartbeat
// arrives).
package fd

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
)

// Config tunes the detector.
type Config struct {
	// Interval between heartbeats. Defaults to 20ms.
	Interval time.Duration
	// Timeout without a heartbeat before suspecting a member.
	// Defaults to 5× Interval.
	Timeout time.Duration
	// OnSuspect fires (once per transition) when a member becomes
	// suspected.
	OnSuspect func(p ids.ProcID)
	// OnRestore fires when a suspected member is heard from again.
	OnRestore func(p ids.ProcID)
	// OnHeartbeat fires on every heartbeat received — the feed for
	// adaptive inter-arrival detectors layered above this one. It runs
	// after the suspicion bookkeeping (so OnRestore precedes it for a
	// heartbeat that clears a suspicion).
	OnHeartbeat func(p ids.ProcID)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * c.Interval
	}
	return c
}

// Detector is one member's failure-detector endpoint. It is not a
// protocol layer: it sits on its own multiplex channel beside the
// protocol stacks and only consumes heartbeats.
type Detector struct {
	cfg  Config
	env  proto.Env
	down proto.Down

	lastSeen  map[ids.ProcID]time.Duration
	suspected map[ids.ProcID]bool

	timers  []proto.Timer
	stopped bool
}

// New creates a detector.
func New(cfg Config) *Detector {
	return &Detector{
		cfg:       cfg.withDefaults(),
		lastSeen:  make(map[ids.ProcID]time.Duration),
		suspected: make(map[ids.ProcID]bool),
	}
}

// Init wires the detector to its channel and starts heartbeating.
func (d *Detector) Init(env proto.Env, down proto.Down) error {
	if env == nil || down == nil {
		return fmt.Errorf("fd: nil wiring")
	}
	d.env, d.down = env, down
	// Everyone starts un-suspected with a fresh grace period.
	for _, p := range env.Members() {
		d.lastSeen[p] = env.Now()
	}
	d.tick(d.cfg.Interval, d.beat)
	d.tick(d.cfg.Interval, d.check)
	return nil
}

func (d *Detector) tick(every time.Duration, fn func()) {
	var arm func()
	arm = func() {
		if d.stopped {
			return
		}
		t := d.env.After(every, func() {
			if d.stopped {
				return
			}
			fn()
			arm()
		})
		d.timers = append(d.timers, t)
	}
	arm()
}

// Stop halts heartbeating and checking.
func (d *Detector) Stop() {
	d.stopped = true
	for _, t := range d.timers {
		t.Stop()
	}
	d.timers = nil
}

// Recv consumes a heartbeat; wire the detector's multiplex channel
// here.
func (d *Detector) Recv(src ids.ProcID, _ []byte) {
	if d.stopped {
		return
	}
	d.lastSeen[src] = d.env.Now()
	if d.suspected[src] {
		delete(d.suspected, src)
		if d.cfg.OnRestore != nil {
			d.cfg.OnRestore(src)
		}
	}
	if d.cfg.OnHeartbeat != nil {
		d.cfg.OnHeartbeat(src)
	}
}

// Suspected reports whether p is currently suspected.
func (d *Detector) Suspected(p ids.ProcID) bool { return d.suspected[p] }

// ForceSuspect marks p suspected immediately, without waiting for its
// heartbeats to lapse — the hook the switching layer's quarantine uses
// when a peer's traffic is persistently malformed. Self cannot be
// suspected. The suspicion is withdrawn like any other when a heartbeat
// arrives, so a transiently-noisy link does not evict a member forever;
// its timestamp is rewound so a quiet peer lapses again on the next
// check rather than re-earning the full grace period.
func (d *Detector) ForceSuspect(p ids.ProcID) {
	if d.stopped || d.env == nil || p == d.env.Self() || d.suspected[p] {
		return
	}
	d.suspected[p] = true
	d.lastSeen[p] = d.env.Now() - d.cfg.Timeout
	if d.cfg.OnSuspect != nil {
		d.cfg.OnSuspect(p)
	}
}

// Suspects returns the currently suspected members, in ring order.
func (d *Detector) Suspects() []ids.ProcID {
	var out []ids.ProcID
	for _, p := range d.env.Members() {
		if d.suspected[p] {
			out = append(out, p)
		}
	}
	return out
}

// Live returns the members not currently suspected, in ring order.
func (d *Detector) Live() []ids.ProcID {
	var out []ids.ProcID
	for _, p := range d.env.Members() {
		if !d.suspected[p] {
			out = append(out, p)
		}
	}
	return out
}

// beat multicasts one heartbeat.
func (d *Detector) beat() {
	_ = d.down.Cast([]byte{1})
}

// check suspects members whose heartbeats stopped.
func (d *Detector) check() {
	now := d.env.Now()
	for _, p := range d.env.Members() {
		if p == d.env.Self() || d.suspected[p] {
			continue
		}
		if now-d.lastSeen[p] > d.cfg.Timeout {
			d.suspected[p] = true
			if d.cfg.OnSuspect != nil {
				d.cfg.OnSuspect(p)
			}
		}
	}
}
