// Package amoeba implements the Amoeba property of Table 1 of the paper
// — "a process is blocked from sending while it is awaiting its own
// messages" [8]. A process with an outstanding multicast queues
// subsequent sends until it has delivered its own message.
//
// Amoeba is the paper's example of a property that is neither
// *delayable* nor *send enabled* (§5.3–5.4): layering delays reorder a
// process's local Send/Deliver interleaving, and appending new Send
// events violates the blocking discipline outright. It is therefore not
// preserved by the switching protocol; the switching package's tests
// demonstrate the violation.
package amoeba

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Layer enforces the Amoeba send-blocking discipline.
type Layer struct {
	env  proto.Env
	down proto.Down
	up   proto.Up

	// nextSeq numbers this process's own casts so their loopback
	// deliveries can be recognized.
	nextSeq uint64
	// outstanding is the seq of the own cast currently awaited, if any.
	outstanding uint64
	waiting     bool
	// queue holds payloads blocked behind the outstanding cast.
	queue [][]byte
}

var _ proto.Layer = (*Layer)(nil)

// New creates an Amoeba-discipline layer.
func New() *Layer { return &Layer{} }

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("amoeba: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Blocked reports whether the process is currently blocked from sending.
func (l *Layer) Blocked() bool { return l.waiting }

// QueueLen returns the number of casts waiting behind the outstanding
// message.
func (l *Layer) QueueLen() int { return len(l.queue) }

// Cast implements proto.Layer: block while awaiting our own message.
func (l *Layer) Cast(payload []byte) error {
	if l.waiting {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		l.queue = append(l.queue, buf)
		return nil
	}
	return l.castNow(payload)
}

func (l *Layer) castNow(payload []byte) error {
	seq := l.nextSeq
	l.nextSeq++
	l.outstanding = seq
	l.waiting = true
	e := wire.NewEncoder(12)
	e.Uvarint(seq)
	return l.down.Cast(e.Prepend(payload))
}

// Send implements proto.Layer: not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	seq := d.Uvarint()
	if d.Err() != nil {
		return
	}
	payload := d.Remaining()
	l.up.Deliver(src, payload)
	if src == l.env.Self() && l.waiting && seq == l.outstanding {
		// Our own message came back: unblock and drain one queued cast.
		l.waiting = false
		if len(l.queue) > 0 {
			next := l.queue[0]
			l.queue = l.queue[1:]
			_ = l.castNow(next)
		}
	}
}
