package amoeba

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func newUnit(t *testing.T, self ids.ProcID) (*Layer, *ptest.RecordDown, *ptest.RecordUp) {
	t.Helper()
	l := New()
	down := &ptest.RecordDown{}
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(self, 2), down, up); err != nil {
		t.Fatal(err)
	}
	return l, down, up
}

func TestFirstCastGoesOut(t *testing.T) {
	l, down, _ := newUnit(t, 0)
	if err := l.Cast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if len(down.Casts) != 1 {
		t.Fatal("first cast did not go out")
	}
	if !l.Blocked() {
		t.Error("sender should be blocked awaiting its own message")
	}
}

func TestSecondCastBlocksUntilOwnDelivery(t *testing.T) {
	l, down, _ := newUnit(t, 0)
	if err := l.Cast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Cast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if len(down.Casts) != 1 {
		t.Fatalf("second cast escaped while blocked: %d casts", len(down.Casts))
	}
	if l.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1", l.QueueLen())
	}
	// Own message loops back: unblocks and drains the queue head.
	l.Recv(0, down.Casts[0])
	if len(down.Casts) != 2 {
		t.Fatal("queued cast not sent after unblock")
	}
	if !l.Blocked() {
		t.Error("should re-block for the drained cast")
	}
}

func TestOthersMessagesDoNotUnblock(t *testing.T) {
	l, down, _ := newUnit(t, 0)
	if err := l.Cast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	// A message from p1 (same wire format) must not unblock p0.
	other, otherDown, _ := newUnit(t, 1)
	if err := other.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Recv(1, otherDown.Casts[0])
	if !l.Blocked() {
		t.Error("unblocked by someone else's message")
	}
	_ = down
}

func TestDeliveriesPassThroughWhileBlocked(t *testing.T) {
	l, _, up := newUnit(t, 0)
	if err := l.Cast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	other, otherDown, _ := newUnit(t, 1)
	if err := other.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Recv(1, otherDown.Casts[0])
	if len(up.Deliveries) != 1 || string(up.Deliveries[0].Payload) != "x" {
		t.Error("blocked sender failed to deliver others' messages")
	}
}

func TestEndToEndDiscipline(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	var layers []*Layer
	c, err := ptest.New(1, cfg, 3, func(proto.Env) []proto.Layer {
		l := New()
		layers = append(layers, l)
		return []proto.Layer{l, fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// All queued behind the first: only one in flight at a time.
	if layers[0].QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4", layers[0].QueueLen())
	}
	c.Run(5 * time.Second)
	for p := 0; p < 3; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != 5 {
			t.Fatalf("member %d delivered %d, want 5: %v", p, len(got), got)
		}
	}
	if layers[0].Blocked() || layers[0].QueueLen() != 0 {
		t.Error("sender did not fully drain")
	}
}

func TestQueueCopiesPayload(t *testing.T) {
	l, down, _ := newUnit(t, 0)
	if err := l.Cast([]byte("a")); err != nil {
		t.Fatal(err)
	}
	payload := []byte("queued")
	if err := l.Cast(payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X'
	l.Recv(0, down.Casts[0])
	if string(down.Casts[1][1:]) != "queued" { // skip 1-byte varint seq header
		t.Errorf("queued payload aliased: %q", down.Casts[1])
	}
}

func TestSendUnsupported(t *testing.T) {
	if err := New().Send(1, nil); err != proto.ErrUnsupported {
		t.Error("Send should be unsupported")
	}
}

func TestInitValidation(t *testing.T) {
	if err := New().Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}

func TestGarbageIgnored(t *testing.T) {
	l, _, up := newUnit(t, 0)
	l.Recv(1, nil)
	if len(up.Deliveries) != 0 {
		t.Error("garbage delivered")
	}
}
