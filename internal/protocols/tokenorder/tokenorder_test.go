package tokenorder

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func cluster(t *testing.T, seed int64, cfg simnet.Config, n int, lcfg Config) *ptest.Cluster {
	t.Helper()
	c, err := ptest.New(seed, cfg, n, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(lcfg), fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func assertTotalOrder(t *testing.T, c *ptest.Cluster, wantCount int) {
	t.Helper()
	ref := c.Bodies(0)
	if len(ref) != wantCount {
		t.Fatalf("member 0 delivered %d, want %d: %v", len(ref), wantCount, ref)
	}
	for p := 1; p < len(c.Members); p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != len(ref) {
			t.Fatalf("member %d delivered %d, member 0 delivered %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %d disagrees at %d: %q vs %q", p, i, got[i], ref[i])
			}
		}
	}
}

func TestSingleSenderTotalOrder(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 4, Config{HoldDelay: time.Millisecond})
	for i := 0; i < 10; i++ {
		if err := c.Cast(2, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * time.Second)
	c.Stop()
	assertTotalOrder(t, c, 10)
}

func TestConcurrentSendersAgree(t *testing.T) {
	cfg := simnet.Config{Nodes: 5, PropDelay: time.Millisecond, Jitter: 2 * time.Millisecond}
	c := cluster(t, 3, cfg, 5, Config{HoldDelay: time.Millisecond})
	for i := 0; i < 8; i++ {
		for s := 0; s < 5; s++ {
			if err := c.Cast(ids.ProcID(s), []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(10 * time.Second)
	c.Stop()
	assertTotalOrder(t, c, 40)
}

func TestTotalOrderUnderLoss(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond, DropProb: 0.15}
	c := cluster(t, 9, cfg, 4, Config{HoldDelay: time.Millisecond})
	for i := 0; i < 8; i++ {
		for s := 0; s < 4; s++ {
			if err := c.Cast(ids.ProcID(s), []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(60 * time.Second)
	c.Stop()
	assertTotalOrder(t, c, 32)
}

func TestPerSenderFIFOWithinTotalOrder(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 5, cfg, 3, Config{HoldDelay: time.Millisecond})
	for i := 0; i < 5; i++ {
		if err := c.Cast(1, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * time.Second)
	c.Stop()
	got := c.Bodies(2)
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, b := range got {
		if b != fmt.Sprintf("%d", i) {
			t.Fatalf("per-sender FIFO violated: %v", got)
		}
	}
}

func TestOriginIsReported(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 3, Config{HoldDelay: time.Millisecond})
	if err := c.Cast(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	c.Stop()
	d := c.Members[1].Delivered
	if len(d) != 1 || d[0].Src != 2 {
		t.Fatalf("delivery = %+v, want src p2", d)
	}
}

func TestSenderWaitsForToken(t *testing.T) {
	// With a 5ms hold delay and 4 members, a member that just released
	// the token waits ~a full rotation before its next cast goes out.
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 4, Config{HoldDelay: 5 * time.Millisecond})
	// Warm up the rotation, then cast from member 3.
	c.Run(100 * time.Millisecond)
	start := c.Sim.Now()
	if err := c.Cast(3, []byte("waited")); err != nil {
		t.Fatal(err)
	}
	c.Run(start + time.Second)
	c.Stop()
	d := c.Members[0].Delivered
	if len(d) != 1 {
		t.Fatal("no delivery")
	}
	lat := d[0].At - start
	// Must be at least one hold delay (token elsewhere), typically ~half
	// a rotation (4 members * ~6ms/hop = 24ms rotation).
	if lat < 2*time.Millisecond {
		t.Errorf("token-order latency %v suspiciously low — sender did not wait for token", lat)
	}
	if lat > 50*time.Millisecond {
		t.Errorf("token-order latency %v too high for a healthy rotation", lat)
	}
}

func TestMaxPerTokenFairness(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
	c, err := ptest.New(1, cfg, 2, func(proto.Env) []proto.Layer {
		return []proto.Layer{New(Config{HoldDelay: time.Millisecond, MaxPerToken: 2}), fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.Cast(1, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * time.Second)
	c.Stop()
	got := c.Bodies(0)
	if len(got) != 6 {
		t.Fatalf("delivered %d, want 6 (bounded flush must still drain)", len(got))
	}
}

func TestSingletonGroup(t *testing.T) {
	cfg := simnet.Config{Nodes: 1}
	c := cluster(t, 1, cfg, 1, Config{HoldDelay: time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	c.Stop()
	got := c.Bodies(0)
	if len(got) != 3 {
		t.Fatalf("singleton delivered %d, want 3: %v", len(got), got)
	}
}

func TestSendUnsupported(t *testing.T) {
	l := New(Config{})
	if err := l.Send(1, nil); err != proto.ErrUnsupported {
		t.Errorf("Send = %v, want ErrUnsupported", err)
	}
}

func TestInitValidation(t *testing.T) {
	l := New(Config{})
	if err := l.Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}

func TestRecvIgnoresGarbage(t *testing.T) {
	l := New(Config{})
	l.Recv(0, nil)
	l.Recv(0, []byte{kindData}) // truncated
	l.Recv(0, []byte{99})       // unknown kind
	if l.QueueLen() != 0 || l.Holding() {
		t.Error("garbage affected layer state")
	}
}

func TestCastCopiesPayload(t *testing.T) {
	cfg := simnet.Config{Nodes: 2, PropDelay: time.Millisecond}
	c := cluster(t, 1, cfg, 2, Config{HoldDelay: time.Millisecond})
	payload := []byte("orig")
	if err := c.Cast(1, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X'
	c.Run(time.Second)
	c.Stop()
	if got := c.Bodies(0); len(got) != 1 || got[0] != "orig" {
		t.Errorf("queued payload aliased caller slice: %v", got)
	}
}
