// Package tokenorder implements rotating-token total order, the second
// total-ordering mechanism compared in §7 of the paper (Chang–Maxemchuk
// style [4]): a token carrying the next global sequence number rotates
// around the logical ring; a process wishing to multicast must hold the
// token, stamps its pending messages with consecutive sequence numbers,
// multicasts them, and passes the token on.
//
// Its trade-off, visible in Figure 2: no central bottleneck, but latency
// is relatively high under low load because senders wait — on average
// half a rotation — for the token.
//
// The layer expects a reliable FIFO layer beneath it (package fifo).
package tokenorder

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

const (
	// kindToken passes the sequencing token: {nextSeq}.
	kindToken uint8 = iota + 1
	// kindData carries a sequenced multicast: {seq, payload}.
	kindData
	// kindBatch carries one token visit's worth of sequenced multicasts
	// in a single frame: {firstSeq, count, count × len-prefixed
	// payloads}, sequence numbers consecutive from firstSeq. Only sent
	// with Config.BatchFlush.
	kindBatch
)

// maxSeqAhead bounds how far beyond the delivery horizon an arriving
// sequence number (token or data) may claim to be. Legitimate seqs only
// run ahead by the messages in flight; a corrupted or forged seq far
// beyond that would poison the pending buffer (data) or the token
// lineage (token) with values the protocol can never reach. Anything
// further ahead is dropped as malformed, before any state mutation.
const maxSeqAhead = 1 << 20

// Config tunes the token rotation.
type Config struct {
	// HoldDelay is how long a member holds the token before passing it
	// on, modelling per-hop protocol processing. It must be positive to
	// bound the rotation rate; zero defaults to 1ms.
	HoldDelay time.Duration
	// MaxPerToken bounds how many pending messages one token visit may
	// flush (fairness). Zero means unlimited.
	MaxPerToken int
	// BatchFlush, when set, coalesces all messages flushed in one token
	// visit into a single multi-message frame (token-carried batching):
	// one frame — and one envelope, one MAC — per visit instead of one
	// per message. Each inner payload still carries its own epoch header
	// from the layer above, so switch-round accounting is unchanged.
	// Off preserves the legacy one-frame-per-message bytes exactly.
	// Must be enabled uniformly across the group.
	BatchFlush bool
}

// Layer is one process's instance of the protocol.
type Layer struct {
	cfg  Config
	env  proto.Env
	down proto.Down
	up   proto.Up

	// queue holds payloads awaiting the token.
	queue [][]byte
	// holding reports whether this member currently holds the token.
	holding bool
	// tokenSeq is the token's next-sequence value while held.
	tokenSeq uint64

	// Receiver state.
	nextDeliver uint64
	pending     map[uint64]dataMsg

	timer   proto.Timer
	stopped bool
	// malformed counts packets dropped by the defensive ingress
	// (decode failure or unknown kind) before any state mutation.
	malformed uint64
}

type dataMsg struct {
	origin  ids.ProcID
	payload []byte
}

var _ proto.Layer = (*Layer)(nil)

// New creates a token-ordered layer.
func New(cfg Config) *Layer {
	if cfg.HoldDelay <= 0 {
		cfg.HoldDelay = time.Millisecond
	}
	return &Layer{cfg: cfg, pending: make(map[uint64]dataMsg)}
}

// Init implements proto.Layer. Member 0 of the ring injects the initial
// token.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("tokenorder: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	if env.Self() == env.Members()[0] {
		// Start the rotation once the whole group is wired; the zero
		// delay defers to after initialization completes.
		l.timer = env.After(0, func() {
			if l.stopped {
				return
			}
			l.acquireToken(0)
		})
	}
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {
	l.stopped = true
	if l.timer != nil {
		l.timer.Stop()
	}
}

// Holding reports whether this member currently holds the token (test
// and metrics hook).
func (l *Layer) Holding() bool { return l.holding }

// QueueLen returns the number of messages awaiting the token.
func (l *Layer) QueueLen() int { return len(l.queue) }

// Cast implements proto.Layer: enqueue until the token arrives.
func (l *Layer) Cast(payload []byte) error {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	l.queue = append(l.queue, buf)
	if l.holding {
		l.flush()
	}
	return nil
}

// Send implements proto.Layer: not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// acquireToken runs when the token (with next sequence number seq)
// arrives at this member.
func (l *Layer) acquireToken(seq uint64) {
	l.holding = true
	l.tokenSeq = seq
	l.flush()
	release := func() {
		if l.stopped {
			return
		}
		l.passToken()
	}
	if l.cfg.HoldDelay > 0 {
		l.timer = l.env.After(l.cfg.HoldDelay, release)
		return
	}
	release()
}

// flush multicasts queued messages while the token is held: one frame
// per message, or — with BatchFlush and more than one queued — a single
// multi-message frame for the whole visit.
func (l *Layer) flush() {
	n := len(l.queue)
	if l.cfg.MaxPerToken > 0 && n > l.cfg.MaxPerToken {
		n = l.cfg.MaxPerToken
	}
	if n == 0 {
		return
	}
	if l.cfg.BatchFlush && n > 1 {
		e := wire.GetEncoder()
		e.U8(kindBatch).Uvarint(l.tokenSeq).Uvarint(uint64(n))
		for i := 0; i < n; i++ {
			e.BytesField(l.queue[i])
		}
		l.tokenSeq += uint64(n)
		_ = l.down.Cast(e.Bytes())
		wire.PutEncoder(e)
		l.queue = l.queue[n:]
		return
	}
	for i := 0; i < n; i++ {
		payload := l.queue[i]
		e := wire.GetEncoder()
		e.U8(kindData).Uvarint(l.tokenSeq)
		l.tokenSeq++
		// The fifo layer below copies anything it retains, so the frame
		// can ride a pooled encoder.
		_ = l.down.Cast(e.Frame(payload))
		wire.PutEncoder(e)
	}
	l.queue = l.queue[n:]
}

// passToken hands the token to the ring successor.
func (l *Layer) passToken() {
	l.holding = false
	succ, err := l.env.Ring().Successor(l.env.Self())
	if err != nil {
		return
	}
	if succ == l.env.Self() {
		// Singleton group: retain the token, re-arming via the timer to
		// avoid unbounded recursion.
		l.timer = l.env.After(l.cfg.HoldDelay, func() {
			if l.stopped {
				return
			}
			l.acquireToken(l.tokenSeq)
		})
		return
	}
	e := wire.GetEncoder()
	e.U8(kindToken).Uvarint(l.tokenSeq)
	_ = l.down.Send(succ, e.Bytes())
	wire.PutEncoder(e)
}

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	switch d.U8() {
	case kindToken:
		seq := d.Uvarint()
		if d.Err() != nil || seq > l.nextDeliver+maxSeqAhead {
			l.malformed++
			return
		}
		l.acquireToken(seq)
	case kindData:
		seq := d.Uvarint()
		if d.Err() != nil || seq > l.nextDeliver+maxSeqAhead {
			l.malformed++
			return
		}
		l.onData(src, seq, d.Remaining())
	case kindBatch:
		first := d.Uvarint()
		count := d.Uvarint()
		// Each entry costs at least one length byte, so count can never
		// exceed the remaining bytes in a well-formed batch; the horizon
		// guard bounds the whole range, not just the first seq.
		if d.Err() != nil || count == 0 || count > uint64(len(d.Remaining()))+1 ||
			first+count > l.nextDeliver+maxSeqAhead {
			l.malformed++
			return
		}
		for i := uint64(0); i < count; i++ {
			payload := d.BytesField()
			if d.Err() != nil {
				l.malformed++
				return
			}
			l.onData(src, first+i, payload)
		}
		if len(d.Remaining()) != 0 {
			l.malformed++ // trailing garbage after the declared entries
		}
	default:
		l.malformed++
	}
}

// onData buffers one sequenced arrival and delivers any in-order run.
func (l *Layer) onData(src ids.ProcID, seq uint64, payload []byte) {
	if seq < l.nextDeliver {
		return // duplicate
	}
	if _, dup := l.pending[seq]; dup {
		return
	}
	l.pending[seq] = dataMsg{origin: src, payload: payload}
	for {
		m, ok := l.pending[l.nextDeliver]
		if !ok {
			break
		}
		delete(l.pending, l.nextDeliver)
		l.nextDeliver++
		l.up.Deliver(m.origin, m.payload)
	}
}

// MalformedDropped returns how many packets the defensive ingress
// rejected (decode failure or unknown kind).
func (l *Layer) MalformedDropped() uint64 { return l.malformed }
