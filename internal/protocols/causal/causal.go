// Package causal implements vector-clock causal multicast (Birman–
// Schiper–Stephenson style) — a repository extension beyond the paper's
// Table 1 that exercises the meta-property machinery on a property the
// paper does not classify.
//
// Causal Order turns out to mirror Reliability's §6.3 status: it lacks
// one meta-property (it is not *delayable* — delaying a delivery past a
// later send retroactively creates a causal edge), so it falls outside
// the provably-SP-safe class, yet the switching protocol preserves it
// anyway: the SP's old-before-new delivery boundary subsumes every
// cross-epoch causal dependency. See property.CausalOrder and the
// switching package's tests.
//
// The layer expects a reliable layer beneath it (package fifo) and a
// fixed membership (the ring): vector clocks are indexed by ring
// position.
package causal

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Layer is one process's causal-multicast instance.
type Layer struct {
	env  proto.Env
	down proto.Down
	up   proto.Up

	// vc[k] counts messages delivered from ring position k.
	vc []uint64
	// sent counts this process's own casts, which may run ahead of its
	// delivered-from-self clock entry (back-to-back casts must carry
	// distinct, increasing stamps).
	sent uint64
	// pending holds arrivals whose causal past is not yet delivered.
	pending []pendingMsg
	// buffered is the high-water mark of the pending queue (metrics).
	buffered int
	// malformed counts packets dropped by the defensive ingress
	// (decode failure or stamp-length mismatch) before any state
	// mutation.
	malformed uint64
}

type pendingMsg struct {
	src     ids.ProcID
	vc      []uint64
	payload []byte
}

var _ proto.Layer = (*Layer)(nil)

// New creates a causal layer.
func New() *Layer { return &Layer{} }

// Init implements proto.Layer.
func (l *Layer) Init(env proto.Env, down proto.Down, up proto.Up) error {
	if env == nil || down == nil || up == nil {
		return fmt.Errorf("causal: nil wiring")
	}
	l.env, l.down, l.up = env, down, up
	l.vc = make([]uint64, env.Ring().Size())
	return nil
}

// Stop implements proto.Layer.
func (l *Layer) Stop() {}

// Pending returns the number of causally blocked messages (test hook).
func (l *Layer) Pending() int { return len(l.pending) }

// MaxBuffered returns the high-water mark of the pending queue.
func (l *Layer) MaxBuffered() int { return l.buffered }

// Clock returns a copy of the local vector clock.
func (l *Layer) Clock() []uint64 {
	out := make([]uint64, len(l.vc))
	copy(out, l.vc)
	return out
}

// Cast implements proto.Layer: stamp the payload with the vector clock
// it must be delivered after. The sender's own component is its send
// counter (which may run ahead of deliveries — earlier own casts are
// part of the new message's causal past); the rest is its delivered
// clock. Clock advancement happens at delivery, uniformly for every
// receiver including the sender's own loopback.
func (l *Layer) Cast(payload []byte) error {
	pos := l.env.Ring().Position(l.env.Self())
	if pos < 0 {
		return fmt.Errorf("causal: %v not on the ring", l.env.Self())
	}
	stamp := make([]uint64, len(l.vc))
	copy(stamp, l.vc)
	l.sent++
	stamp[pos] = l.sent
	e := wire.NewEncoder(8 + 2*len(stamp))
	e.Counts(stamp)
	return l.down.Cast(e.Prepend(payload))
}

// Send implements proto.Layer: not part of this protocol.
func (l *Layer) Send(ids.ProcID, []byte) error { return proto.ErrUnsupported }

// Recv implements proto.Layer.
func (l *Layer) Recv(src ids.ProcID, pkt []byte) {
	d := wire.NewDecoder(pkt)
	stamp := d.Counts()
	if d.Err() != nil || len(stamp) != len(l.vc) {
		l.malformed++
		return
	}
	if pos := l.env.Ring().Position(src); pos < 0 || stamp[pos] <= l.vc[pos] {
		return // unknown sender or already-delivered duplicate
	}
	l.pending = append(l.pending, pendingMsg{src: src, vc: stamp, payload: d.Remaining()})
	if len(l.pending) > l.buffered {
		l.buffered = len(l.pending)
	}
	l.drain()
}

// MalformedDropped returns how many packets the defensive ingress
// rejected (decode failure or stamp-length mismatch).
func (l *Layer) MalformedDropped() uint64 { return l.malformed }

// deliverable reports whether m's causal past is fully delivered: the
// next message from its sender, with no knowledge we lack.
func (l *Layer) deliverable(m pendingMsg) bool {
	pos := l.env.Ring().Position(m.src)
	if pos < 0 {
		return false
	}
	for k := range l.vc {
		switch {
		case k == pos:
			if m.vc[k] != l.vc[k]+1 {
				return false
			}
		default:
			if m.vc[k] > l.vc[k] {
				return false
			}
		}
	}
	return true
}

// drain delivers every pending message whose dependencies are met,
// repeating until a fixpoint.
func (l *Layer) drain() {
	for {
		progress := false
		for i := 0; i < len(l.pending); i++ {
			m := l.pending[i]
			if !l.deliverable(m) {
				continue
			}
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			pos := l.env.Ring().Position(m.src)
			l.vc[pos]++
			l.up.Deliver(m.src, m.payload)
			progress = true
			i--
		}
		if !progress {
			return
		}
	}
}
