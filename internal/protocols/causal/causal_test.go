package causal

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/ptest"
	"repro/internal/simnet"
)

func cluster(t *testing.T, seed int64, cfg simnet.Config, n int) (*ptest.Cluster, []*Layer) {
	t.Helper()
	var layers []*Layer
	c, err := ptest.New(seed, cfg, n, func(proto.Env) []proto.Layer {
		l := New()
		layers = append(layers, l)
		return []proto.Layer{l, fifo.New(fifo.Config{})}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, layers
}

func TestBasicDelivery(t *testing.T) {
	c, _ := cluster(t, 1, simnet.Config{Nodes: 3, PropDelay: time.Millisecond}, 3)
	for i := 0; i < 5; i++ {
		if err := c.Cast(0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)
	for p := 0; p < 3; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != 5 {
			t.Fatalf("member %d delivered %d, want 5", p, len(got))
		}
		for i, b := range got {
			if b != fmt.Sprintf("m%d", i) {
				t.Fatalf("member %d FIFO-per-sender violated: %v", p, got)
			}
		}
	}
}

// TestCausalReplyOrdering is the canonical causal scenario: a reply
// must never be delivered before the message it replies to, even when
// the network favours the replier.
func TestCausalReplyOrdering(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond}
	c, layers := cluster(t, 1, cfg, 3)
	// p2 cannot hear p0 for a while: the original message is delayed.
	c.Net.Block(0, 2)
	if err := c.Cast(0, []byte("question")); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond)
	// p1 has the question; its reply is causally after it.
	if got := c.Bodies(1); len(got) != 1 || got[0] != "question" {
		t.Fatalf("p1 state: %v", got)
	}
	if err := c.Cast(1, []byte("answer")); err != nil {
		t.Fatal(err)
	}
	c.Run(100 * time.Millisecond)
	// The answer reached p2 but must be causally blocked.
	if got := c.Bodies(2); len(got) != 0 {
		t.Fatalf("p2 delivered %v before the question", got)
	}
	if layers[2].Pending() == 0 {
		t.Fatal("p2 is not buffering the answer")
	}
	// Heal the link: fifo repairs the question, then both deliver in
	// causal order.
	c.Net.Unblock(0, 2)
	c.Run(2 * time.Second)
	got := c.Bodies(2)
	if len(got) != 2 || got[0] != "question" || got[1] != "answer" {
		t.Fatalf("p2 delivered %v, want [question answer]", got)
	}
	if layers[2].MaxBuffered() == 0 {
		t.Error("buffering high-water mark not recorded")
	}
}

func TestConcurrentMessagesBothDelivered(t *testing.T) {
	cfg := simnet.Config{Nodes: 3, PropDelay: time.Millisecond, Jitter: 2 * time.Millisecond}
	c, _ := cluster(t, 5, cfg, 3)
	if err := c.Cast(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Cast(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	for p := 0; p < 3; p++ {
		if got := c.Bodies(ids.ProcID(p)); len(got) != 2 {
			t.Fatalf("member %d delivered %v", p, got)
		}
	}
}

func TestSenderDeliversOwnMessages(t *testing.T) {
	c, layers := cluster(t, 1, simnet.Config{Nodes: 2}, 2)
	if err := c.Cast(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if got := c.Bodies(0); len(got) != 1 {
		t.Fatalf("sender delivered %v", got)
	}
	if clk := layers[0].Clock(); clk[0] != 1 || clk[1] != 0 {
		t.Errorf("clock = %v", clk)
	}
}

func TestUnderLossAndJitter(t *testing.T) {
	cfg := simnet.Config{Nodes: 4, PropDelay: time.Millisecond, DropProb: 0.2, Jitter: 2 * time.Millisecond}
	c, _ := cluster(t, 9, cfg, 4)
	for i := 0; i < 8; i++ {
		for s := 0; s < 4; s++ {
			if err := c.Cast(ids.ProcID(s), []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Run(30 * time.Second)
	for p := 0; p < 4; p++ {
		got := c.Bodies(ids.ProcID(p))
		if len(got) != 32 {
			t.Fatalf("member %d delivered %d/32 under loss", p, len(got))
		}
		// Per-sender FIFO is implied by causal order.
		next := map[byte]int{}
		for _, b := range got {
			s := b[1]
			var idx int
			if _, err := fmt.Sscanf(b[3:], "%d", &idx); err != nil {
				t.Fatal(err)
			}
			if idx != next[s] {
				t.Fatalf("member %d: sender %c out of order: %v", p, s, got)
			}
			next[s]++
		}
	}
}

func TestGarbageIgnored(t *testing.T) {
	l := New()
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	l.Recv(1, nil)
	l.Recv(1, []byte{1, 5})    // count mismatch vs ring size 2
	l.Recv(9, []byte{2, 1, 0}) // unknown sender
	if len(up.Deliveries) != 0 || l.Pending() != 0 {
		t.Error("garbage affected state")
	}
}

func TestDuplicateDropped(t *testing.T) {
	l := New()
	up := &ptest.RecordUp{}
	if err := l.Init(ptest.NewFakeEnv(0, 2), &ptest.RecordDown{}, up); err != nil {
		t.Fatal(err)
	}
	sender := New()
	down := &ptest.RecordDown{}
	if err := sender.Init(ptest.NewFakeEnv(1, 2), down, &ptest.RecordUp{}); err != nil {
		t.Fatal(err)
	}
	if err := sender.Cast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	pkt := down.Casts[0]
	l.Recv(1, pkt)
	l.Recv(1, pkt) // duplicate
	if len(up.Deliveries) != 1 {
		t.Errorf("delivered %d, want 1", len(up.Deliveries))
	}
	if l.Pending() != 0 {
		t.Error("duplicate parked in pending queue")
	}
}

func TestSendUnsupported(t *testing.T) {
	if err := New().Send(1, nil); err != proto.ErrUnsupported {
		t.Error("Send should be unsupported")
	}
}

func TestInitValidation(t *testing.T) {
	if err := New().Init(nil, nil, nil); err == nil {
		t.Error("Init accepted nil wiring")
	}
}
