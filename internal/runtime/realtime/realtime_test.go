package realtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/protocols/fifo"
	"repro/internal/protocols/seqorder"
	"repro/internal/protocols/tokenorder"
)

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(Config{Nodes: 0}); err == nil {
		t.Error("accepted empty group")
	}
}

func TestEnvBasics(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	n := g.Node(1)
	if n.Self() != 1 || len(n.Members()) != 3 || n.Ring().Size() != 3 {
		t.Error("env basics wrong")
	}
	if n.Now() < 0 {
		t.Error("negative Now")
	}
	var mu sync.Mutex
	fired := false
	tm := n.After(5*time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	if !tm.Active() {
		t.Error("timer inactive before firing")
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	ok := fired
	mu.Unlock()
	if !ok {
		t.Error("timer did not fire")
	}
	if tm.Active() || tm.Stop() {
		t.Error("fired timer still active/stoppable")
	}
}

func TestTimerStop(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	var mu sync.Mutex
	fired := false
	tm := g.Node(0).After(20*time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	if !tm.Stop() {
		t.Error("Stop returned false")
	}
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestRunExecutesOnLoop(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	ran := false
	g.Node(0).Run(func() { ran = true })
	if !ran {
		t.Error("Run did not execute")
	}
}

func TestSendValidation(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	if err := g.Node(0).Transport().Send(9, nil); err == nil {
		t.Error("send to unknown node accepted")
	}
}

func TestStopIdempotent(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	g.Stop()
	g.Stop() // must not panic or deadlock
}

// waitFor polls cond for up to timeout.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestStacksOverRealtime runs the sequencer total-order stack on the
// goroutine runtime: the same layer code as the simulator tests.
func TestStacksOverRealtime(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 3, PropDelay: time.Millisecond, Jitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	var mu sync.Mutex
	delivered := map[ids.ProcID][]string{}
	stacks := make([]*proto.Stack, 3)
	for i, n := range g.Nodes() {
		n := n
		p := ids.ProcID(i)
		app := proto.UpFunc(func(src ids.ProcID, payload []byte) {
			mu.Lock()
			delivered[p] = append(delivered[p], string(payload))
			mu.Unlock()
		})
		st, err := proto.Build(n, app, n.Transport(),
			seqorder.New(0), fifo.New(fifo.Config{}))
		if err != nil {
			t.Fatal(err)
		}
		stacks[i] = st
		n.Bind(st.Recv)
	}
	for i := 0; i < 5; i++ {
		i := i
		g.Node(1).Run(func() {
			if err := stacks[1].Cast([]byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Error(err)
			}
		})
	}
	ok := waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for p := 0; p < 3; p++ {
			if len(delivered[ids.ProcID(p)]) != 5 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("incomplete delivery: %v", delivered)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := 0; p < 3; p++ {
		got := delivered[ids.ProcID(p)]
		for i, b := range got {
			if b != fmt.Sprintf("m%d", i) {
				t.Fatalf("member %d out of order: %v", p, got)
			}
		}
	}
}

// TestSwitchOverRealtime runs the full switching protocol on goroutines
// — the configuration the examples use.
func TestSwitchOverRealtime(t *testing.T) {
	g, err := NewGroup(Config{Nodes: 3, PropDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	protos := []switching.ProtocolFactory{
		func(proto.Env) []proto.Layer {
			return []proto.Layer{seqorder.New(0), fifo.New(fifo.Config{})}
		},
		func(proto.Env) []proto.Layer {
			return []proto.Layer{tokenorder.New(tokenorder.Config{HoldDelay: time.Millisecond}), fifo.New(fifo.Config{})}
		},
	}
	var mu sync.Mutex
	delivered := map[ids.ProcID][]string{}
	switches := make([]*switching.Switch, 3)
	for i, n := range g.Nodes() {
		n := n
		p := ids.ProcID(i)
		app := proto.UpFunc(func(src ids.ProcID, payload []byte) {
			m, err := proto.DecodeApp(payload)
			if err != nil {
				return
			}
			mu.Lock()
			delivered[p] = append(delivered[p], string(m.Body))
			mu.Unlock()
		})
		var sw *switching.Switch
		n.Run(func() {
			sw, err = switching.New(n, app, n.Transport(), switching.Config{
				Protocols:     protos,
				TokenInterval: 2 * time.Millisecond,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		switches[i] = sw
		n.Bind(sw.Recv)
	}
	cast := func(p ids.ProcID, body string) {
		g.Node(p).Run(func() {
			m := proto.AppMsg{ID: proto.MakeMsgID(p, uint32(len(body))+uint32(body[len(body)-1])), Sender: p, Body: []byte(body)}
			if err := switches[p].Cast(m.Encode()); err != nil {
				t.Error(err)
			}
		})
	}
	cast(0, "before")
	g.Node(1).Run(func() { switches[1].RequestSwitch() })
	ok := waitFor(t, 5*time.Second, func() bool {
		done := false
		g.Node(0).Run(func() { done = switches[0].Epoch() == 1 })
		return done
	})
	if !ok {
		t.Fatal("switch did not complete on the realtime runtime")
	}
	cast(2, "after")
	ok = waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for p := 0; p < 3; p++ {
			if len(delivered[ids.ProcID(p)]) != 2 {
				return false
			}
		}
		return true
	})
	if !ok {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("incomplete: %v", delivered)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := 0; p < 3; p++ {
		got := delivered[ids.ProcID(p)]
		if got[0] != "before" || got[1] != "after" {
			t.Fatalf("member %d delivered %v", p, got)
		}
	}
}

// lockedCollector is an obs.Collector safe for the realtime runtime's
// concurrent post sites.
type lockedCollector struct {
	mu  sync.Mutex
	col *obs.Collector
}

func (l *lockedCollector) Record(e obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.col.Record(e)
}

func (l *lockedCollector) Enabled() bool { return true }

// TestMailboxDropCounted pins the no-silent-drop contract at the
// runtime boundary: an event posted to a full mailbox increments the
// node's Dropped counter and emits an obs drop event with the mailbox
// reason, instead of vanishing.
func TestMailboxDropCounted(t *testing.T) {
	rec := &lockedCollector{col: obs.NewCollector()}
	g, err := NewGroup(Config{Nodes: 1, MailboxDepth: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	n := g.Node(0)

	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	n.post(func() { close(started); <-block })
	<-started // the loop is now parked inside the blocker
	n.post(func() {})
	if got := n.Dropped(); got != 0 {
		t.Fatalf("drop counted while the mailbox still had room: %d", got)
	}
	n.post(func() {}) // mailbox full: must be dropped, loudly
	if got := n.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	drops := 0
	for _, e := range rec.col.Events() {
		if e.Type == obs.EvDrop {
			drops++
			if e.Proc != 0 || e.Peer != obs.NoPeer || e.Args[0] != obs.DropMailbox {
				t.Errorf("malformed mailbox drop event: %+v", e)
			}
		}
	}
	if drops != 1 {
		t.Errorf("trace has %d drop events, want 1", drops)
	}
}
