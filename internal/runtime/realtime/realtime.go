// Package realtime drives the same protocol layers as the simulator,
// but on goroutines and the wall clock: every member runs an event loop
// goroutine (layers are single-threaded by design, exactly as in the
// discrete-event runtime), and the in-memory network delivers packets
// after real delays. This is the runtime the runnable examples use to
// show the stack working outside the simulator; experiments use the
// deterministic DES runtime instead.
package realtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/proto"
)

// Config describes the in-memory network.
type Config struct {
	// Nodes is the group size.
	Nodes int
	// PropDelay is the one-way delivery delay.
	PropDelay time.Duration
	// Jitter adds a uniform [0, Jitter) extra delay per packet.
	Jitter time.Duration
	// Seed seeds the per-group random source (jitter, layer RNGs).
	Seed int64
	// MailboxDepth bounds each member's pending-event queue.
	MailboxDepth int
	// Recorder, if set, receives an obs.EvDrop event for every posted
	// event discarded at a full mailbox. Unlike the DES runtime, nodes
	// here run on separate goroutines, so the recorder must be safe for
	// concurrent use (wrap obs.Collector in a lock; the stock recorders
	// are single-threaded).
	Recorder obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Group is a set of real-time nodes.
type Group struct {
	cfg   Config
	ring  *ids.Ring
	nodes []*Node
	start time.Time

	mu      sync.Mutex
	stopped bool
	wg      sync.WaitGroup
}

// NewGroup creates and starts n event-loop nodes.
func NewGroup(cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("realtime: need at least one node")
	}
	ring, err := ids.NewRing(ids.Procs(cfg.Nodes))
	if err != nil {
		return nil, err
	}
	g := &Group{cfg: cfg, ring: ring, start: time.Now()}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			group:   g,
			self:    ids.ProcID(i),
			mailbox: make(chan func(), cfg.MailboxDepth),
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(i))),
			done:    make(chan struct{}),
		}
		g.nodes = append(g.nodes, n)
		g.wg.Add(1)
		go n.loop(&g.wg)
	}
	return g, nil
}

// Node returns member p.
func (g *Group) Node(p ids.ProcID) *Node { return g.nodes[p] }

// Nodes returns all members.
func (g *Group) Nodes() []*Node {
	out := make([]*Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Stop shuts down every node's event loop and waits for them to exit.
func (g *Group) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	g.mu.Unlock()
	for _, n := range g.nodes {
		close(n.done)
	}
	g.wg.Wait()
}

func (g *Group) isStopped() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stopped
}

// Node is one real-time member: a proto.Env whose handlers all run on
// its own event-loop goroutine.
type Node struct {
	group   *Group
	self    ids.ProcID
	mailbox chan func()
	rng     *rand.Rand
	done    chan struct{}

	// dropped counts events discarded at a full mailbox; atomic because
	// post is called from peers' loops and timer goroutines.
	dropped atomic.Uint64

	// recv is the bound packet receiver (the stack's Recv).
	recv func(src ids.ProcID, payload []byte)
}

var _ proto.Env = (*Node)(nil)

// loop runs queued events until the node is stopped.
func (n *Node) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case fn := <-n.mailbox:
			fn()
		case <-n.done:
			return
		}
	}
}

// post enqueues fn on the node's event loop, dropping it if the node
// has stopped or the mailbox is full (overload behaves like loss, which
// the fifo layer repairs). A full-mailbox drop is never silent: it is
// counted in Dropped and reported to the configured recorder.
func (n *Node) post(fn func()) {
	select {
	case n.mailbox <- fn:
	case <-n.done:
	default:
		// Mailbox full: drop, loudly.
		n.dropped.Add(1)
		if r := n.group.cfg.Recorder; r != nil && r.Enabled() {
			r.Record(obs.Drop(n.Now(), n.self, obs.NoPeer, obs.DropMailbox))
		}
	}
}

// Dropped reports how many posted events this node has discarded at a
// full mailbox.
func (n *Node) Dropped() uint64 { return n.dropped.Load() }

// Self implements proto.Env.
func (n *Node) Self() ids.ProcID { return n.self }

// Members implements proto.Env.
func (n *Node) Members() []ids.ProcID { return n.group.ring.Members() }

// Ring implements proto.Env.
func (n *Node) Ring() *ids.Ring { return n.group.ring }

// Now implements proto.Env (wall time since group start).
func (n *Node) Now() time.Duration { return time.Since(n.group.start) }

// Rand implements proto.Env. It is only touched from the node's own
// loop, so no locking is needed.
func (n *Node) Rand() *rand.Rand { return n.rng }

// rtTimer adapts time.Timer to proto.Timer.
type rtTimer struct {
	t       *time.Timer
	mu      sync.Mutex
	stopped bool
	fired   bool
}

// Stop implements proto.Timer.
func (t *rtTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	t.t.Stop()
	return true
}

// Active implements proto.Timer.
func (t *rtTimer) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.stopped && !t.fired
}

// After implements proto.Env: the callback is posted to the node's
// event loop, preserving the single-threaded layer discipline.
func (n *Node) After(d time.Duration, fn func()) proto.Timer {
	rt := &rtTimer{}
	rt.t = time.AfterFunc(d, func() {
		rt.mu.Lock()
		if rt.stopped {
			rt.mu.Unlock()
			return
		}
		rt.fired = true
		rt.mu.Unlock()
		n.post(fn)
	})
	return rt
}

// Transport returns the node's bottom-of-stack network endpoint.
func (n *Node) Transport() proto.Down {
	return rtTransport{n: n}
}

// Bind routes incoming packets into recv (normally a Stack.Recv or
// Switch.Recv). Must be called before traffic flows.
func (n *Node) Bind(recv func(src ids.ProcID, payload []byte)) {
	n.recv = recv
}

// Run executes fn on the node's event loop and waits for it — the safe
// way for external code (main goroutine, tests) to call into a stack.
func (n *Node) Run(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	n.post(func() {
		defer wg.Done()
		fn()
	})
	wg.Wait()
}

type rtTransport struct {
	n *Node
}

var _ proto.Down = rtTransport{}

func (t rtTransport) delay() time.Duration {
	d := t.n.group.cfg.PropDelay
	if j := t.n.group.cfg.Jitter; j > 0 {
		d += time.Duration(t.n.rng.Int63n(int64(j)))
	}
	return d
}

// deliver schedules a packet at dst after the network delay.
func (t rtTransport) deliver(dst *Node, src ids.ProcID, payload []byte) {
	if t.n.group.isStopped() {
		return
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	time.AfterFunc(t.delay(), func() {
		dst.post(func() {
			if dst.recv != nil {
				dst.recv(src, buf)
			}
		})
	})
}

// Cast implements proto.Down.
func (t rtTransport) Cast(payload []byte) error {
	for _, dst := range t.n.group.nodes {
		t.deliver(dst, t.n.self, payload)
	}
	return nil
}

// Send implements proto.Down.
func (t rtTransport) Send(dst ids.ProcID, payload []byte) error {
	if dst < 0 || int(dst) >= len(t.n.group.nodes) {
		return fmt.Errorf("realtime: send to unknown node %v", dst)
	}
	t.deliver(t.n.group.nodes[dst], t.n.self, payload)
	return nil
}
