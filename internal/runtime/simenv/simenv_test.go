package simenv

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/simnet"
)

func newGroup(t *testing.T, n int) (*des.Sim, *Group) {
	t.Helper()
	sim := des.New(1)
	net, err := simnet.New(sim, simnet.Config{Nodes: n, PropDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGroup(sim, net, n)
	if err != nil {
		t.Fatal(err)
	}
	return sim, g
}

func TestNewGroupValidation(t *testing.T) {
	sim := des.New(1)
	net, err := simnet.New(sim, simnet.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGroup(sim, net, 3); err == nil {
		t.Error("NewGroup accepted group larger than network")
	}
	if _, err := NewGroup(sim, net, 0); err == nil {
		t.Error("NewGroup accepted empty group")
	}
}

func TestEnvBasics(t *testing.T) {
	sim, g := newGroup(t, 3)
	n := g.Node(1)
	if n.Self() != 1 {
		t.Errorf("Self = %v", n.Self())
	}
	if got := n.Members(); len(got) != 3 {
		t.Errorf("Members = %v", got)
	}
	if n.Ring().Size() != 3 {
		t.Errorf("Ring size = %d", n.Ring().Size())
	}
	if n.Rand() == nil {
		t.Error("Rand is nil")
	}
	fired := false
	n.After(5*time.Millisecond, func() { fired = true })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("After callback did not fire")
	}
	if n.Now() != 5*time.Millisecond {
		t.Errorf("Now = %v", n.Now())
	}
	if len(g.Nodes()) != 3 {
		t.Error("Nodes() wrong length")
	}
	if g.Sim() != sim || g.Net() == nil {
		t.Error("accessors broken")
	}
}

func TestTransportCastReachesAll(t *testing.T) {
	sim, g := newGroup(t, 3)
	got := map[ids.ProcID][]byte{}
	for _, n := range g.Nodes() {
		n := n
		if err := n.BindStack(func(src ids.ProcID, b []byte) {
			got[n.Self()] = b
			if src != 0 {
				t.Errorf("src = %v, want p0", src)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Node(0).Transport().Cast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("cast reached %d nodes, want 3 (incl. sender)", len(got))
	}
}

func TestTransportSendIsPointToPoint(t *testing.T) {
	sim, g := newGroup(t, 3)
	counts := map[ids.ProcID]int{}
	for _, n := range g.Nodes() {
		n := n
		if err := n.BindStack(func(ids.ProcID, []byte) { counts[n.Self()]++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Node(0).Transport().Send(2, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if counts[2] != 1 || counts[0] != 0 || counts[1] != 0 {
		t.Errorf("counts = %v, want only p2", counts)
	}
}
