// Package simenv binds the protocol framework to the discrete-event
// simulator: it provides a proto.Env and a bottom-of-stack transport for
// each member of a simulated group. All experiments and most tests run
// protocol stacks through this runtime because it is deterministic and
// fast; the realtime package drives the same layer code on goroutines.
package simenv

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/proto"
	"repro/internal/simnet"
)

// Group is a simulated set of processes sharing a network.
type Group struct {
	sim   *des.Sim
	net   *simnet.Network
	ring  *ids.Ring
	nodes []*Node
}

// NewGroup creates n nodes over the given simulator and network. The
// network must have at least n nodes configured.
func NewGroup(sim *des.Sim, net *simnet.Network, n int) (*Group, error) {
	if n <= 0 || n > net.Nodes() {
		return nil, fmt.Errorf("simenv: group size %d exceeds network size %d", n, net.Nodes())
	}
	ring, err := ids.NewRing(ids.Procs(n))
	if err != nil {
		return nil, err
	}
	g := &Group{sim: sim, net: net, ring: ring}
	g.nodes = make([]*Node, n)
	for i := range g.nodes {
		g.nodes[i] = &Node{group: g, self: ids.ProcID(i)}
	}
	return g, nil
}

// Node returns member p's node.
func (g *Group) Node(p ids.ProcID) *Node { return g.nodes[p] }

// Nodes returns all nodes in id order.
func (g *Group) Nodes() []*Node {
	out := make([]*Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Sim returns the underlying simulator.
func (g *Group) Sim() *des.Sim { return g.sim }

// Net returns the underlying network.
func (g *Group) Net() *simnet.Network { return g.net }

// Node is one simulated process: it implements proto.Env and provides
// the process's transport.
type Node struct {
	group *Group
	self  ids.ProcID
}

var _ proto.Env = (*Node)(nil)

// Self implements proto.Env.
func (n *Node) Self() ids.ProcID { return n.self }

// Members implements proto.Env.
func (n *Node) Members() []ids.ProcID { return n.group.ring.Members() }

// Ring implements proto.Env.
func (n *Node) Ring() *ids.Ring { return n.group.ring }

// Now implements proto.Env (virtual time).
func (n *Node) Now() time.Duration { return n.group.sim.Now() }

// After implements proto.Env.
func (n *Node) After(d time.Duration, fn func()) proto.Timer {
	return n.group.sim.After(d, fn)
}

// Rand implements proto.Env. All nodes share the simulator's stream;
// handlers run one at a time, so this is race-free and deterministic.
func (n *Node) Rand() *rand.Rand { return n.group.sim.Rand() }

// Transport returns the node's bottom-of-stack Down, backed by the
// simulated network.
func (n *Node) Transport() proto.Down {
	return transport{net: n.group.net, self: n.self}
}

// BindStack routes the node's incoming network packets into the given
// receiver (normally proto.Stack.Recv or a multiplexer's Recv).
func (n *Node) BindStack(recv func(src ids.ProcID, payload []byte)) error {
	return n.group.net.Bind(n.self, simnet.Handler(recv))
}

type transport struct {
	net  *simnet.Network
	self ids.ProcID
}

var _ proto.Down = transport{}

func (t transport) Cast(payload []byte) error {
	return t.net.Multicast(t.self, payload)
}

func (t transport) Send(dst ids.ProcID, payload []byte) error {
	return t.net.Unicast(t.self, dst, payload)
}
