// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7), plus micro-benchmarks of the substrates. Experiment
// benchmarks run the full discrete-event simulation per iteration and
// report the measured quantity (latency, switch duration, switch count)
// as custom metrics, so `go test -bench=. -benchmem` reproduces the
// paper's numbers alongside the usual ns/op.
//
// Mapping to DESIGN.md §4:
//
//	E1  BenchmarkTable1Properties
//	E2  BenchmarkTable2Matrix
//	E3  BenchmarkFigure2Sequencer / BenchmarkFigure2Token / BenchmarkFigure2Hybrid
//	E4  the crossover is asserted in BenchmarkFigure2Crossover
//	E5  BenchmarkSwitchOverhead
//	E6  BenchmarkHysteresis
//
// Full-length regenerations (paper-scale windows) are produced by
// `go run ./cmd/switchbench` and `go run ./cmd/metamatrix`.
package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core/switching"
	"repro/internal/core/viewswitch"
	"repro/internal/des"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/metaprop"
	"repro/internal/property"
	"repro/internal/proto"
	"repro/internal/protocols/arq"
	"repro/internal/protocols/ptest"
	"repro/internal/runtime/simenv"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// benchRunConfig is a shortened but shape-preserving §7 configuration
// so the benchmark suite completes in seconds.
func benchRunConfig(seed int64, senders int) harness.RunConfig {
	rc := harness.DefaultRunConfig()
	rc.Seed = seed
	rc.ActiveSenders = senders
	rc.Warmup = 500 * time.Millisecond
	rc.Measure = 2 * time.Second
	rc.Drain = 2 * time.Second
	return rc
}

// BenchmarkFigure2Sequencer reproduces the sequencer curve of Figure 2
// (E3): mean delivery latency at 1, 5 and 10 active senders.
func BenchmarkFigure2Sequencer(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("senders-%d", n), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.RunDirect(harness.Sequencer, benchRunConfig(int64(i+1), n))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(harness.Millis(last.Stats.Mean), "latency-ms")
		})
	}
}

// BenchmarkFigure2Token reproduces the token curve of Figure 2 (E3).
func BenchmarkFigure2Token(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("senders-%d", n), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.RunDirect(harness.Token, benchRunConfig(int64(i+1), n))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(harness.Millis(last.Stats.Mean), "latency-ms")
		})
	}
}

// BenchmarkFigure2Hybrid measures the switching hybrid with a threshold
// oracle at the crossover (our extension of Figure 2).
func BenchmarkFigure2Hybrid(b *testing.B) {
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("senders-%d", n), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.RunSwitched(benchRunConfig(int64(i+1), n),
					switching.ThresholdOracle{Threshold: 5.5}, 50*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(harness.Millis(last.Stats.Mean), "latency-ms")
		})
	}
}

// BenchmarkFigure2Crossover verifies the E4 claim every iteration: the
// sequencer wins below the crossover, the token above it.
func BenchmarkFigure2Crossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		low := benchRunConfig(seed, 2)
		high := benchRunConfig(seed, 9)
		seqLow, err := harness.RunDirect(harness.Sequencer, low)
		if err != nil {
			b.Fatal(err)
		}
		tokLow, err := harness.RunDirect(harness.Token, low)
		if err != nil {
			b.Fatal(err)
		}
		seqHigh, err := harness.RunDirect(harness.Sequencer, high)
		if err != nil {
			b.Fatal(err)
		}
		tokHigh, err := harness.RunDirect(harness.Token, high)
		if err != nil {
			b.Fatal(err)
		}
		if seqLow.Stats.Mean >= tokLow.Stats.Mean || tokHigh.Stats.Mean >= seqHigh.Stats.Mean {
			b.Fatalf("crossover shape violated: low %v/%v high %v/%v",
				seqLow.Stats.Mean, tokLow.Stats.Mean, seqHigh.Stats.Mean, tokHigh.Stats.Mean)
		}
	}
}

// BenchmarkSwitchOverhead reproduces E5: switch duration near the
// crossover, in both directions ("the overhead of switching depends on
// the latency of the protocol being switched away from", §7).
func BenchmarkSwitchOverhead(b *testing.B) {
	for _, from := range []harness.ProtocolKind{harness.Sequencer, harness.Token} {
		b.Run("from-"+from.String(), func(b *testing.B) {
			var last *harness.OverheadResult
			for i := 0; i < b.N; i++ {
				cfg := harness.DefaultOverheadConfig()
				cfg.From = from
				cfg.Run = benchRunConfig(int64(i+1), 5)
				cfg.SwitchAt = time.Second
				res, err := harness.RunOverhead(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(harness.Millis(last.SwitchDuration), "switch-ms")
			b.ReportMetric(harness.Millis(last.Hiccup), "hiccup-ms")
		})
	}
}

// BenchmarkHysteresis reproduces E6: switch-request counts under the
// aggressive threshold oracle vs. the damped hysteresis oracle while
// the load oscillates across the crossover.
func BenchmarkHysteresis(b *testing.B) {
	cfg := harness.DefaultHysteresisConfig()
	cfg.Run.Warmup = 300 * time.Millisecond
	cfg.Run.Measure = 6 * time.Second
	cfg.Run.Drain = 2 * time.Second
	cfg.LoadPeriod = time.Second
	b.Run("threshold", func(b *testing.B) {
		var last *harness.HysteresisResult
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Run.Seed = int64(i + 1)
			res, err := harness.RunHysteresis(c, switching.ThresholdOracle{Threshold: cfg.Threshold}, "threshold")
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.SwitchRequests), "switches")
		b.ReportMetric(harness.Millis(last.MeanLatency), "latency-ms")
	})
	b.Run("hysteresis", func(b *testing.B) {
		var last *harness.HysteresisResult
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Run.Seed = int64(i + 1)
			oracle, err := switching.NewHysteresisOracle(cfg.Low, cfg.High)
			if err != nil {
				b.Fatal(err)
			}
			res, err := harness.RunHysteresis(c, oracle, "hysteresis")
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.SwitchRequests), "switches")
		b.ReportMetric(harness.Millis(last.MeanLatency), "latency-ms")
	})
}

// BenchmarkTable2Matrix reproduces E2: the full meta-property matrix
// computation (randomized falsifier plus witness verification).
func BenchmarkTable2Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := metaprop.Compute(metaprop.Checker{Trials: 100, Seed: int64(i + 1)}, metaprop.DefaultGenConfig())
		if err != nil {
			b.Fatal(err)
		}
		ok, err := m.AllPreserved("Total Order")
		if err != nil || !ok {
			b.Fatal("matrix wrong")
		}
	}
}

// BenchmarkTable1Properties measures E1: evaluating every Table 1
// predicate over generated traces.
func BenchmarkTable1Properties(b *testing.B) {
	gc := metaprop.DefaultGenConfig()
	rng := rand.New(rand.NewSource(1))
	props := property.Table1(gc.Procs)
	// Pre-generate one satisfying trace per property; the benchmark
	// measures predicate evaluation, not generation.
	gens := make(map[string]func() bool, len(props))
	for _, p := range props {
		p := p
		gen := gc.ForProperty(p)
		tr := gen(rng)
		gens[p.Name()] = func() bool { return p.Holds(tr) }
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, check := range gens {
			if !check() {
				b.Fatal("generated trace violates its property")
			}
		}
	}
}

// BenchmarkSwitchTokenIntervalAblation is the DESIGN.md §5 ablation:
// the idle rotation pace trades control-plane traffic against how long
// a requesting manager waits for a NORMAL token (switch start latency).
func BenchmarkSwitchTokenIntervalAblation(b *testing.B) {
	for _, interval := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		b.Run(interval.String(), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				rc := benchRunConfig(int64(i+1), 2)
				var rec *switching.Record
				run, err := harness.NewSwitchedRun(rc, switching.Config{
					Protocols:        harness.Factories(rc.TokenHold),
					TokenInterval:    interval,
					OnSwitchComplete: func(r switching.Record) { rec = &r },
				})
				if err != nil {
					b.Fatal(err)
				}
				requested := time.Second
				run.Cluster.Sim.At(requested, func() {
					run.Cluster.Members[3].Switch.RequestSwitch()
				})
				run.StartWorkload()
				run.Finish()
				if rec == nil {
					b.Fatal("switch never completed")
				}
				total += rec.Started - requested
			}
			b.ReportMetric(harness.Millis(total/time.Duration(b.N)), "wait-for-token-ms")
		})
	}
}

// BenchmarkViewSwitchVsSP contrasts §8's view-change switch with the
// token-ring SP at the same load: the view switch preserves Virtual
// Synchrony but blocks senders during its flush; the SP never blocks
// senders but cannot preserve VS. Metrics: switch duration and the
// number of casts that had to queue.
func BenchmarkViewSwitchVsSP(b *testing.B) {
	b.Run("token-ring-sp", func(b *testing.B) {
		var dur time.Duration
		for i := 0; i < b.N; i++ {
			cfg := harness.DefaultOverheadConfig()
			cfg.Run = benchRunConfig(int64(i+1), 3)
			cfg.From = harness.Sequencer
			cfg.SwitchAt = time.Second
			res, err := harness.RunOverhead(cfg)
			if err != nil {
				b.Fatal(err)
			}
			dur += res.SwitchDuration
		}
		b.ReportMetric(harness.Millis(dur/time.Duration(b.N)), "switch-ms")
		b.ReportMetric(0, "blocked-casts")
	})
	b.Run("view-switch", func(b *testing.B) {
		var dur time.Duration
		var blocked uint64
		for i := 0; i < b.N; i++ {
			d, q, err := runViewSwitchOnce(int64(i + 1))
			if err != nil {
				b.Fatal(err)
			}
			dur += d
			blocked += q
		}
		b.ReportMetric(harness.Millis(dur/time.Duration(b.N)), "switch-ms")
		b.ReportMetric(float64(blocked)/float64(b.N), "blocked-casts")
	})
}

// runViewSwitchOnce runs one view change under load and returns its
// duration and how many casts the flush blocked.
func runViewSwitchOnce(seed int64) (time.Duration, uint64, error) {
	rc := benchRunConfig(seed, 3)
	sim := des.New(rc.Seed)
	net, err := simnet.New(sim, simnet.Ethernet10Mbit(rc.Group))
	if err != nil {
		return 0, 0, err
	}
	group, err := simenv.NewGroup(sim, net, rc.Group)
	if err != nil {
		return 0, 0, err
	}
	managers := make([]*viewswitch.Manager, rc.Group)
	for _, node := range group.Nodes() {
		app := proto.UpFunc(func(ids.ProcID, []byte) {})
		mgr, err := viewswitch.New(node, app, node.Transport(), viewswitch.Config{
			Protocols: harness.Factories(rc.TokenHold),
		})
		if err != nil {
			return 0, 0, err
		}
		managers[node.Self()] = mgr
		if err := node.BindStack(mgr.Recv); err != nil {
			return 0, 0, err
		}
	}
	// §7-style constant-rate senders.
	interval := time.Duration(float64(time.Second) / rc.RatePerSender)
	stopAt := rc.Warmup + rc.Measure
	for s := 0; s < rc.ActiveSenders; s++ {
		p := ids.ProcID(s)
		seq := uint32(0)
		var tick func()
		tick = func() {
			if sim.Now() >= stopAt {
				return
			}
			seq++
			m := proto.AppMsg{ID: proto.MakeMsgID(p, seq), Sender: p, Body: make([]byte, rc.MsgBytes)}
			_ = managers[p].Cast(m.Encode())
			sim.After(interval, tick)
		}
		sim.After(time.Duration(s)*interval/10, tick)
	}
	vm := proto.AppMsg{ID: proto.MakeMsgID(0, 999999), Sender: 0, IsView: true, View: ids.Procs(rc.Group)}
	sim.At(time.Second, func() {
		_ = managers[0].RequestViewChange(ids.Procs(rc.Group), vm.Encode())
	})
	sim.RunUntil(stopAt + rc.Drain)
	recs := managers[0].Records()
	if len(recs) != 1 {
		return 0, 0, fmt.Errorf("view change did not complete")
	}
	var blocked uint64
	for _, m := range managers {
		blocked += m.Stats().BlockedCasts
		m.Stop()
	}
	return recs[0].Duration(), blocked, nil
}

// BenchmarkP2PARQ is the §1 point-to-point specialization's trade-off
// table: throughput and retransmission waste of stop-and-wait vs
// go-back-N over a slow and a lossy link. Stop-and-wait is RTT-bound
// but frugal; go-back-N pipelines but resends its whole window on a
// loss.
func BenchmarkP2PARQ(b *testing.B) {
	type linkCase struct {
		name string
		cfg  simnet.Config
	}
	links := []linkCase{
		{"fat-pipe", simnet.Config{Nodes: 2, PropDelay: 10 * time.Millisecond}},
		{"lossy", simnet.Config{Nodes: 2, PropDelay: 2 * time.Millisecond, DropProb: 0.15}},
	}
	protos := []struct {
		name string
		mk   func() proto.Layer
	}{
		{"stopwait", func() proto.Layer { return arq.NewStopAndWait(30 * time.Millisecond) }},
		{"gobackn", func() proto.Layer { return arq.NewGoBackN(16, 30*time.Millisecond) }},
		{"selectiverepeat", func() proto.Layer { return arq.NewSelectiveRepeat(16, 30*time.Millisecond) }},
	}
	for _, link := range links {
		for _, pr := range protos {
			b.Run(link.name+"/"+pr.name, func(b *testing.B) {
				var delivered int
				var retx uint64
				for i := 0; i < b.N; i++ {
					var layer proto.Layer
					cluster, err := ptest.New(int64(i+1), link.cfg, 2, func(proto.Env) []proto.Layer {
						l := pr.mk()
						if layer == nil {
							layer = l
						}
						return []proto.Layer{l}
					})
					if err != nil {
						b.Fatal(err)
					}
					const offered = 200
					for j := 0; j < offered; j++ {
						if err := cluster.Members[0].Stack.Send(1, make([]byte, 256)); err != nil {
							b.Fatal(err)
						}
					}
					cluster.Run(time.Second)
					delivered = len(cluster.Members[1].Delivered)
					type statser interface{ Stats() arq.Stats }
					if s, ok := layer.(statser); ok {
						retx = s.Stats().Retransmits
					}
					cluster.Stop()
				}
				b.ReportMetric(float64(delivered), "delivered-per-s")
				b.ReportMetric(float64(retx), "retransmits")
			})
		}
	}
}

// BenchmarkWireHeader measures the header codec on the hot path.
func BenchmarkWireHeader(b *testing.B) {
	payload := make([]byte, 1024)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := wire.NewEncoder(16)
			e.U8(1).Uvarint(uint64(i)).Proc(3)
			_ = e.Prepend(payload)
		}
	})
	e := wire.NewEncoder(16)
	e.U8(1).Uvarint(12345).Proc(3)
	pkt := e.Prepend(payload)
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := wire.NewDecoder(pkt)
			_ = d.U8()
			_ = d.Uvarint()
			_ = d.Proc()
			if d.Err() != nil {
				b.Fatal(d.Err())
			}
		}
	})
}

// BenchmarkDESScheduler measures the simulator's event throughput.
func BenchmarkDESScheduler(b *testing.B) {
	b.ReportAllocs()
	sim := des.New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			sim.After(time.Microsecond, tick)
		}
	}
	sim.After(time.Microsecond, tick)
	if err := sim.Run(0); err != nil {
		b.Fatal(err)
	}
}
